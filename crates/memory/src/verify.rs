//! Invariant validation for the memory manager.
//!
//! [`MemoryContext::verify`] walks a context's blocks, slot directories and
//! indirection entries; [`Runtime::verify`] checks runtime-global state
//! (epoch/relocation flags, block accounting, indirection totals). The
//! stress harness calls these after every injected failure: a fault-induced
//! early exit anywhere in the manager must never leave a structural
//! inconsistency behind.
//!
//! Both validators require **quiescence**: no concurrent mutators,
//! enumerators, or in-flight compaction passes on the verified state. They
//! read non-atomically-consistent snapshots and would report spurious
//! violations against concurrent writers.

use std::sync::atomic::Ordering;

use crate::block::{BlockRef, BLOCK_SIZE};
use crate::context::MemoryContext;
use crate::incarnation::{FLAG_FORWARD, FLAG_FROZEN, FLAG_LOCK};
use crate::indirection::EntryRef;
use crate::runtime::Runtime;
use crate::slot::SlotState;
use crate::stats::MemoryStats;

/// Cap on accumulated violation messages, to keep pathological failures
/// readable.
const MAX_VIOLATIONS: usize = 32;

/// Summary of a successful [`MemoryContext::verify`] walk.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// Blocks walked (regular membership plus group sources and dests).
    pub blocks: usize,
    /// Valid (live) slots found.
    pub valid_slots: u64,
    /// Limbo (freed, unreclaimed) slots found.
    pub limbo_slots: u64,
    /// Live objects resident only in spilled pages (no heap slot).
    pub spilled_slots: u64,
    /// In-flight compaction groups encountered (0 when quiescent).
    pub groups: usize,
}

/// Collects violations up to [`MAX_VIOLATIONS`].
struct Violations(Vec<String>);

impl Violations {
    fn new() -> Self {
        Violations(Vec::new())
    }

    fn push(&mut self, msg: String) {
        if self.0.len() < MAX_VIOLATIONS {
            self.0.push(msg);
        }
    }

    fn into_result<T>(self, ok: T) -> Result<T, Vec<String>> {
        if self.0.is_empty() {
            Ok(ok)
        } else {
            Err(self.0)
        }
    }
}

impl MemoryContext {
    /// Validates every structural invariant of this context. Requires
    /// quiescence (see module docs). Returns the walk summary, or the list
    /// of violations found.
    ///
    /// Checked invariants, per block:
    /// - the header magic word is intact and the header identifies this
    ///   context's type and id;
    /// - the slot directory's recounted `Valid` slots equal the header's
    ///   `valid_count`, and `limbo_count` never exceeds the recounted limbo
    ///   slots (moved-out slots enter limbo without the trigger counter);
    /// - every `Valid` slot has a back-pointer to an indirection entry whose
    ///   payload points back at exactly this slot;
    /// - no `Valid` slot or its entry is left `LOCK`ed, no `Valid` slot
    ///   carries a `FORWARD` tombstone flag, and `FROZEN` appears only on
    ///   blocks that are mid-compaction.
    pub fn verify(&self) -> Result<VerifyReport, Vec<String>> {
        let mut v = Violations::new();
        let mut report = VerifyReport::default();
        let m = self.membership_snapshot();
        report.groups = m.groups.len();

        let group_blocks = m
            .groups
            .iter()
            .flat_map(|g| g.sources.iter().copied().chain(std::iter::once(g.dest)));
        for block in m.blocks.iter().copied().chain(group_blocks) {
            self.verify_block(block, &mut v, &mut report);
        }
        self.verify_spilled(&mut v, &mut report);
        v.into_result(report)
    }

    /// Accounts objects that live only in spilled pages. Every entry a
    /// spilled page claims must still carry that page's spill-stub tag
    /// (fault-in untags and removes the page atomically under the spill
    /// mutex, so a mismatch means a lost or double-resident object) and
    /// must not be left `LOCK`ed.
    fn verify_spilled(&self, v: &mut Violations, report: &mut VerifyReport) {
        let (pages, counted) = self.with_spill_pages(|pages| {
            let mut counted = 0u64;
            for page in pages {
                for &(back, slot) in &page.entries {
                    counted += 1;
                    let id = page.block_id;
                    let entry = unsafe { EntryRef::from_addr(back) };
                    let payload = entry.get().load_payload(Ordering::Acquire);
                    if payload != page.tag {
                        v.push(format!(
                            "spilled block {id} slot {slot}: entry payload {payload:#x} \
                             != spill stub {:#x}",
                            page.tag
                        ));
                    }
                    let word = entry.get().inc().load(Ordering::Acquire);
                    if word & FLAG_LOCK != 0 {
                        v.push(format!(
                            "spilled block {id} slot {slot}: entry incarnation left LOCKed"
                        ));
                    }
                }
            }
            (pages.len(), counted)
        });
        report.spilled_slots = counted;
        let gauge_blocks = self.spilled_blocks();
        if gauge_blocks != pages as u64 {
            v.push(format!(
                "spilled-blocks gauge {gauge_blocks} != spill page count {pages}"
            ));
        }
        let gauge_objects = self.spilled_objects();
        if gauge_objects != counted {
            v.push(format!(
                "spilled-objects gauge {gauge_objects} != recounted {counted}"
            ));
        }
    }

    fn verify_block(&self, block: BlockRef, v: &mut Violations, report: &mut VerifyReport) {
        report.blocks += 1;
        let id = block.header().block_id;
        if !block.magic_ok() {
            v.push(format!("block {id}: header magic corrupted"));
            return; // nothing else in this header can be trusted
        }
        let header = block.header();
        if header.type_id != self.type_id() {
            v.push(format!(
                "block {id}: type_id {} != context type_id {}",
                header.type_id,
                self.type_id()
            ));
        }
        if header.context_id != self.id() {
            v.push(format!(
                "block {id}: context_id {} != context id {}",
                header.context_id,
                self.id()
            ));
        }
        if header.capacity != self.layout().capacity {
            v.push(format!(
                "block {id}: capacity {} != layout capacity {}",
                header.capacity,
                self.layout().capacity
            ));
        }

        let compacting = header.compacting.load(Ordering::Acquire) != 0;
        let mut valid = 0u64;
        let mut limbo = 0u64;
        for slot in 0..header.capacity {
            match block.slot_word(slot).state() {
                SlotState::Free => {}
                SlotState::Limbo => limbo += 1,
                SlotState::Valid => {
                    valid += 1;
                    self.verify_valid_slot(block, slot, compacting, v);
                }
            }
        }
        report.valid_slots += valid;
        report.limbo_slots += limbo;

        let counted_valid = header.valid_count.load(Ordering::Relaxed) as u64;
        if counted_valid != valid {
            v.push(format!(
                "block {id}: valid_count {counted_valid} != recounted {valid}"
            ));
        }
        let counted_limbo = header.limbo_count.load(Ordering::Relaxed) as u64;
        if counted_limbo > limbo {
            // Moved-out and drop-invalidated slots enter limbo state without
            // the reclamation trigger counter, so the counter is a floor.
            v.push(format!(
                "block {id}: limbo_count {counted_limbo} exceeds recounted {limbo}"
            ));
        }
    }

    fn verify_valid_slot(&self, block: BlockRef, slot: u32, compacting: bool, v: &mut Violations) {
        let id = block.header().block_id;
        let back = block.back_ptr(slot).load(Ordering::Acquire);
        if back == 0 {
            v.push(format!(
                "block {id} slot {slot}: valid slot without back-pointer"
            ));
            return;
        }
        let entry = unsafe { EntryRef::from_addr(back) };
        let payload = entry.get().load_payload(Ordering::Acquire);
        let expected = self.payload_of(&block, slot);
        if payload != expected {
            v.push(format!(
                "block {id} slot {slot}: entry payload {payload:#x} does not point back \
                 (expected {expected:#x})"
            ));
        }
        let entry_word = entry.get().inc().load(Ordering::Acquire);
        if entry_word & FLAG_LOCK != 0 {
            v.push(format!(
                "block {id} slot {slot}: entry incarnation left LOCKed"
            ));
        }
        if entry_word & FLAG_FORWARD != 0 {
            v.push(format!(
                "block {id} slot {slot}: live entry carries FORWARD flag"
            ));
        }
        if entry_word & FLAG_FROZEN != 0 && !compacting {
            v.push(format!(
                "block {id} slot {slot}: entry FROZEN outside compaction"
            ));
        }
        let slot_word = self.slot_inc(&block, slot).load(Ordering::Acquire);
        if slot_word & FLAG_LOCK != 0 {
            v.push(format!(
                "block {id} slot {slot}: slot incarnation left LOCKed"
            ));
        }
        if slot_word & FLAG_FORWARD != 0 {
            v.push(format!(
                "block {id} slot {slot}: valid slot is a FORWARD tombstone"
            ));
        }
        if slot_word & FLAG_FROZEN != 0 && !compacting {
            let reloc = {
                let list = block.header().reloc_list.load(Ordering::Acquire);
                if list.is_null() {
                    "no reloc list".to_string()
                } else {
                    match unsafe { (*list).find(slot) } {
                        Some(r) => format!("reloc status {:?} inc {:#x}", r.status(), r.inc),
                        None => "not in reloc list".to_string(),
                    }
                }
            };
            v.push(format!(
                "block {id} slot {slot}: slot FROZEN outside compaction \
                 (word {slot_word:#x}, entry word {entry_word:#x}, {reloc})"
            ));
        }
    }
}

impl Runtime {
    /// Validates runtime-global invariants. Requires quiescence (see module
    /// docs): in particular, no compaction pass may be in flight.
    ///
    /// Checked invariants:
    /// - relocation state is fully cleared (no moving phase without an
    ///   announced relocation epoch; both clear when quiescent);
    /// - block accounting balances: `blocks_live` equals
    ///   `blocks_allocated - blocks_freed` and covers the graveyard;
    /// - allocator accounting balances: every budget-reserved block is
    ///   either a live handout or parked in a shard cache
    ///   (`budgeted == blocks_live + cached`);
    /// - the budgeted byte total (handouts + caches) respects the budget;
    /// - slab accounting balances per class: live + free cells equal the
    ///   carved capacity, and lifetime allocated − freed equals live;
    /// - the indirection table's live entries equal the live object count.
    pub fn verify(&self) -> Result<(), Vec<String>> {
        let mut v = Violations::new();
        if self.in_moving_phase() && self.next_relocation_epoch() == 0 {
            v.push("moving phase open without an announced relocation epoch".into());
        }
        let live = MemoryStats::get(&self.stats.blocks_live);
        let allocated = MemoryStats::get(&self.stats.blocks_allocated);
        let freed = MemoryStats::get(&self.stats.blocks_freed);
        if allocated.checked_sub(freed) != Some(live) {
            v.push(format!(
                "block accounting off: allocated {allocated} - freed {freed} != live {live}"
            ));
        }
        let buried = self.graveyard_len() as u64;
        if buried > live {
            v.push(format!(
                "graveyard holds {buried} blocks but only {live} live"
            ));
        }
        let budgeted = self.alloc.budgeted_blocks();
        let cached = self.alloc.cached_blocks();
        if budgeted != live + cached {
            v.push(format!(
                "allocator accounting off: budgeted {budgeted} != live {live} + cached {cached}"
            ));
        }
        if let Some(budget) = self.memory_budget() {
            let bytes = budgeted.saturating_mul(BLOCK_SIZE as u64);
            if bytes > budget {
                v.push(format!("budgeted bytes {bytes} exceed budget {budget}"));
            }
        }
        for class in self.alloc_snapshot().slab_classes {
            let cell = class.cell_size;
            if class.cells_live + class.cells_free != class.cells_capacity {
                v.push(format!(
                    "slab class {cell}B accounting off: live {} + free {} != capacity {}",
                    class.cells_live, class.cells_free, class.cells_capacity
                ));
            }
        }
        let cells_alloc = MemoryStats::get(&self.stats.slab_cells_allocated);
        let cells_freed = MemoryStats::get(&self.stats.slab_cells_freed);
        let cells_live: u64 = self
            .alloc_snapshot()
            .slab_classes
            .iter()
            .map(|c| c.cells_live)
            .sum();
        if cells_alloc.checked_sub(cells_freed) != Some(cells_live) {
            v.push(format!(
                "slab cell accounting off: allocated {cells_alloc} - freed {cells_freed} \
                 != live {cells_live}"
            ));
        }
        let entries = self.indirection.live_entries();
        let objects = self.stats.objects_live();
        if entries != objects {
            v.push(format!(
                "indirection live entries {entries} != live objects {objects}"
            ));
        }
        v.into_result(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::type_id_of;
    use crate::context::ContextConfig;
    use std::sync::Arc;

    fn ctx(rt: &Arc<Runtime>) -> MemoryContext {
        MemoryContext::new_rows(
            rt.clone(),
            8,
            8,
            type_id_of::<u64>(),
            ContextConfig::default(),
        )
        .unwrap()
    }

    fn alloc_u64(c: &MemoryContext, v: u64) -> crate::context::Allocation {
        c.alloc_with(|block, slot| unsafe { block.obj_ptr(slot).cast::<u64>().write(v) })
            .unwrap()
    }

    #[test]
    fn fresh_runtime_and_context_verify_clean() {
        let rt = Runtime::new();
        rt.verify().unwrap();
        let c = ctx(&rt);
        let report = c.verify().unwrap();
        assert_eq!(report, VerifyReport::default());
    }

    #[test]
    fn verify_counts_slots_after_churn() {
        let rt = Runtime::new();
        let c = ctx(&rt);
        let allocs: Vec<_> = (0..100).map(|i| alloc_u64(&c, i)).collect();
        for a in allocs.iter().take(40) {
            assert!(c.free(a.entry, a.entry_inc));
        }
        let report = c.verify().unwrap();
        assert_eq!(report.valid_slots, 60);
        assert_eq!(report.limbo_slots, 40);
        assert!(report.blocks >= 1);
        rt.verify().unwrap();
    }

    #[test]
    fn verify_passes_after_compaction() {
        let rt = Runtime::new();
        let config = ContextConfig {
            reclamation_threshold: 1.1,
            ..ContextConfig::default()
        };
        let c = MemoryContext::new_rows(rt.clone(), 8, 8, type_id_of::<u64>(), config).unwrap();
        let cap = c.layout().capacity as usize;
        let allocs: Vec<_> = (0..cap * 4).map(|i| alloc_u64(&c, i as u64)).collect();
        for (i, a) in allocs.iter().enumerate() {
            if i % 10 != 0 {
                assert!(c.free(a.entry, a.entry_inc));
            }
        }
        let report = c.compact();
        assert!(report.moved > 0);
        c.release_retired();
        rt.drain_graveyard_blocking();
        let vr = c.verify().unwrap();
        assert_eq!(vr.groups, 0, "no groups survive a finished pass");
        rt.verify().unwrap();
    }

    #[test]
    fn verify_detects_corrupted_counts() {
        let rt = Runtime::new();
        let c = ctx(&rt);
        let a = alloc_u64(&c, 1);
        // Sabotage: inflate the valid counter behind the validator's back.
        a.block.header().valid_count.fetch_add(5, Ordering::Relaxed);
        let violations = c.verify().unwrap_err();
        assert!(
            violations.iter().any(|m| m.contains("valid_count")),
            "{violations:?}"
        );
        a.block.header().valid_count.fetch_sub(5, Ordering::Relaxed);
        c.verify().unwrap();
    }

    #[test]
    fn verify_detects_dangling_entry_payload() {
        let rt = Runtime::new();
        let c = ctx(&rt);
        let a = alloc_u64(&c, 2);
        let good = a.entry.get().load_payload(Ordering::Acquire);
        a.entry.get().store_payload(good + 8, Ordering::Release);
        let violations = c.verify().unwrap_err();
        assert!(
            violations.iter().any(|m| m.contains("does not point back")),
            "{violations:?}"
        );
        a.entry.get().store_payload(good, Ordering::Release);
        c.verify().unwrap();
    }

    #[test]
    fn runtime_verify_detects_budget_overrun() {
        let rt = Runtime::new();
        let c = ctx(&rt);
        let _a = alloc_u64(&c, 3);
        // One block is live; a sub-block budget is now violated.
        rt.set_memory_budget(Some(1));
        let violations = rt.verify().unwrap_err();
        assert!(
            violations.iter().any(|m| m.contains("exceed budget")),
            "{violations:?}"
        );
        rt.set_memory_budget(None);
        rt.verify().unwrap();
    }
}
