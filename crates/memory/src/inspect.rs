//! Live heap introspection — the memory observatory.
//!
//! [`HeapSnapshot::capture`] walks every block of one or more
//! [`MemoryContext`]s **without stopping writers** and reports what the
//! paper's claims are actually about: per-block and per-collection
//! occupancy, limbo dead space and in-block holes (§3.5 fragmentation),
//! incarnation churn (slot-reuse pressure), indirection-table load, epoch
//! lag, and pin hold-time percentiles. `smc-top` renders this live; the
//! `--json` mode and [`HeapSnapshot::to_json`] serialize it.
//!
//! ## Consistency model (lock-free, epoch-consistent)
//!
//! The snapshot takes no lock the mutators care about. It pins an epoch
//! guard *before* taking the membership snapshot and holds it across the
//! walk, which buys the same guarantee enumeration relies on
//! ([`MemoryContext::morsels`]): while the snapshot thread sits pinned in
//! epoch `e`, the global epoch can reach at most `e + 1`, and a compaction
//! announced after the snapshot needs the global epoch to reach its
//! relocation epoch plus one (≥ `e + 2`) before it may move or retire
//! anything — so every block in the snapshot stays block-resident for the
//! whole walk. What the walk *cannot* promise is a serializable point in
//! time across counters: writers keep allocating and freeing while the
//! per-block atomics are read, and a compaction announced *before* the pin
//! may already be moving objects between two blocks mid-walk. The snapshot
//! therefore tolerates concurrent relocation (group sources and dest are
//! walked explicitly, like [`MemoryContext::verify`] does) and records a
//! [`Watermark`] — pinned epoch, global epoch at both ends of the walk,
//! relocation announcement — so a consumer can tell how much the world
//! moved underneath it. Totals reconcile exactly with `Smc::verify` once
//! the heap is quiescent (asserted by `tests/snapshot_under_compaction.rs`
//! while compaction runs *between* snapshots, with per-snapshot invariants
//! holding *during* it).

use std::sync::atomic::Ordering;

use smc_obs::{JsonValue, Summary};

use crate::block::{BlockRef, BLOCK_SIZE};
use crate::context::MemoryContext;
use crate::epoch::Guard;
use crate::error::MemError;
use crate::runtime::Runtime;

/// Epoch bookkeeping recorded around one snapshot walk: how much the world
/// could have moved while the walk ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermark {
    /// The epoch the snapshot thread was pinned at for the whole walk.
    pub pinned_epoch: u64,
    /// Global epoch observed right after pinning, before the first block.
    pub global_epoch_begin: u64,
    /// Global epoch observed after the last block.
    pub global_epoch_end: u64,
    /// The announced relocation epoch at capture time (0 = no compaction
    /// pending), [`EpochManager::next_relocation_epoch`](crate::epoch::EpochManager::next_relocation_epoch).
    pub relocation_epoch: u64,
    /// True when an in-flight compaction was in its moving phase.
    pub in_moving_phase: bool,
}

impl Watermark {
    /// The snapshot-vs-advance invariant: while the snapshot held its pin
    /// at `pinned_epoch`, the global epoch may not have moved past
    /// `pinned_epoch + 1`. Always true for a correctly-pinned walk; the
    /// `smc-check` scenario `snapshot_vs_advance` explores it exhaustively.
    pub fn consistent(&self) -> bool {
        self.global_epoch_begin <= self.pinned_epoch + 1
            && self.global_epoch_end <= self.pinned_epoch + 1
    }
}

/// Point-in-time occupancy accounting for one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSnapshot {
    /// Globally unique block number.
    pub block_id: u64,
    /// Slots in this block.
    pub capacity: u32,
    /// Live (`Valid`) slots.
    pub valid: u32,
    /// Limbo slots: freed, but their removal epoch keeps them unreusable.
    pub limbo: u32,
    /// Holes: slots inside the allocated prefix that are free again
    /// (reclaimed limbo), i.e. internal fragmentation the allocator can
    /// refill without growing the block.
    pub holes: u32,
    /// The allocation scan cursor (extent of the allocated prefix).
    pub alloc_cursor: u32,
    /// Sum of slot incarnation counters over the allocated prefix — how
    /// many times this block's slots have been reused since allocation.
    pub incarnation_churn: u64,
    /// True while the block is scheduled for (or undergoing) compaction.
    pub compacting: bool,
    /// True when the block was reached through an in-flight compaction
    /// group (source or destination) rather than regular membership.
    pub in_group: bool,
}

impl BlockSnapshot {
    /// Live-slot fraction of capacity.
    pub fn occupancy(&self) -> f64 {
        self.valid as f64 / self.capacity.max(1) as f64
    }
}

/// Aggregated snapshot of one collection ([`MemoryContext`]).
#[derive(Debug, Clone)]
pub struct CollectionSnapshot {
    /// The context's runtime-unique id.
    pub context_id: u64,
    /// Bytes of payload per slot (row stride, or the columnar store's
    /// per-slot share) — the unit behind the `*_bytes` figures.
    pub slot_bytes: u32,
    /// Per-block accounting, regular membership first, then group blocks.
    pub blocks: Vec<BlockSnapshot>,
    /// In-flight compaction groups observed.
    pub groups: usize,
    /// Total live slots.
    pub valid_slots: u64,
    /// Total limbo slots.
    pub limbo_slots: u64,
    /// Total holes (reusable slots inside allocated prefixes).
    pub hole_slots: u64,
    /// Total slot capacity.
    pub capacity_slots: u64,
    /// Total incarnation churn.
    pub incarnation_churn: u64,
    /// The context's byte budget
    /// ([`ContextConfig::budget_bytes`](crate::context::ContextConfig::budget_bytes)),
    /// `None` for unlimited — lets a tenants panel show used-vs-budget.
    pub budget_bytes: Option<u64>,
    /// Blocks currently evicted to the page store (§ spill tier).
    pub spilled_blocks: u64,
    /// Live objects resident only in spilled pages — counted into
    /// `live_objects()` but absent from `valid_slots` (no heap slot).
    pub spilled_objects: u64,
}

impl CollectionSnapshot {
    /// Captures one collection under an already-pinned guard. Pin the
    /// guard **before** calling and keep it alive while the result is
    /// interpreted — see the module docs for why that ordering is the
    /// whole consistency argument.
    pub fn capture(ctx: &MemoryContext, _guard: &Guard<'_>) -> CollectionSnapshot {
        let membership = ctx.membership_snapshot();
        let mut blocks = Vec::with_capacity(membership.blocks.len());
        for block in &membership.blocks {
            blocks.push(block_snapshot(ctx, block, false));
        }
        for group in &membership.groups {
            for block in &group.sources {
                blocks.push(block_snapshot(ctx, block, true));
            }
            blocks.push(block_snapshot(ctx, &group.dest, true));
        }
        let mut snap = CollectionSnapshot {
            context_id: ctx.id(),
            slot_bytes: slot_bytes(ctx),
            groups: membership.groups.len(),
            valid_slots: 0,
            limbo_slots: 0,
            hole_slots: 0,
            capacity_slots: 0,
            incarnation_churn: 0,
            budget_bytes: ctx.config().budget_bytes,
            spilled_blocks: ctx.spilled_blocks(),
            spilled_objects: ctx.spilled_objects(),
            blocks,
        };
        for b in &snap.blocks {
            snap.valid_slots += b.valid as u64;
            snap.limbo_slots += b.limbo as u64;
            snap.hole_slots += b.holes as u64;
            snap.capacity_slots += b.capacity as u64;
            snap.incarnation_churn += b.incarnation_churn;
        }
        snap
    }

    /// Blocks walked (membership plus in-flight group sources and dests).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Live-slot fraction of total capacity (0 for an empty collection).
    pub fn occupancy(&self) -> f64 {
        self.valid_slots as f64 / self.capacity_slots.max(1) as f64
    }

    /// Bytes of live payload.
    pub fn live_bytes(&self) -> u64 {
        self.valid_slots * self.slot_bytes as u64
    }

    /// Dead bytes: limbo slots that cannot be reused yet.
    pub fn dead_bytes(&self) -> u64 {
        self.limbo_slots * self.slot_bytes as u64
    }

    /// Hole bytes: reusable free slots inside allocated prefixes.
    pub fn hole_bytes(&self) -> u64 {
        self.hole_slots * self.slot_bytes as u64
    }

    /// Total block footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.blocks.len() as u64 * BLOCK_SIZE as u64
    }
}

/// Load figures for the runtime's shared indirection table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndirectionLoad {
    /// Entries currently backing live objects.
    pub live_entries: u64,
    /// Entries parked in epoch quarantine before reuse.
    pub quarantined_entries: u64,
    /// Entries on the deferred-release list.
    pub deferred_entries: u64,
    /// Total entries across all allocated chunks.
    pub capacity: u64,
}

impl IndirectionLoad {
    /// Live fraction of allocated capacity.
    pub fn load_factor(&self) -> f64 {
        self.live_entries as f64 / self.capacity.max(1) as f64
    }
}

/// One lock-free, epoch-consistent observatory snapshot (see module docs).
#[derive(Debug, Clone)]
pub struct HeapSnapshot {
    /// Epoch bookkeeping around the walk.
    pub watermark: Watermark,
    /// Per-collection accounting, in argument order.
    pub collections: Vec<CollectionSnapshot>,
    /// Indirection-table load at capture time.
    pub indirection: IndirectionLoad,
    /// Global epoch minus the oldest pinned reader's epoch (0 when idle).
    pub epoch_lag: u64,
    /// The oldest pinned reader's epoch, if any thread was pinned
    /// (includes the snapshot's own pin).
    pub min_pinned_epoch: Option<u64>,
    /// Pin hold-time percentiles (ns) since the runtime started.
    pub pin_hold: Summary,
    /// Allocation-layer state: shard caches, budget gauge, remote-free
    /// counters, and per-class slab occupancy.
    pub alloc: crate::alloc::AllocSnapshot,
}

impl HeapSnapshot {
    /// Captures a snapshot of `contexts` (all owned by `runtime`), pinning
    /// its own epoch guard for the duration of the walk.
    ///
    /// Panics when the epoch thread registry is full; use
    /// [`try_capture`](Self::try_capture) where that must be an error.
    pub fn capture(runtime: &Runtime, contexts: &[&MemoryContext]) -> HeapSnapshot {
        Self::try_capture(runtime, contexts).expect("epoch thread registry full")
    }

    /// Fallible [`capture`](Self::capture).
    pub fn try_capture(
        runtime: &Runtime,
        contexts: &[&MemoryContext],
    ) -> Result<HeapSnapshot, MemError> {
        // Pin FIRST: everything below leans on the pinned-epoch fence
        // between this thread and any compaction announced afterwards.
        let guard = runtime.try_pin()?;
        let epochs = &runtime.epochs;
        let global_epoch_begin = epochs.global_epoch();
        let relocation_epoch = epochs.next_relocation_epoch();
        let in_moving_phase = epochs.in_moving_phase();
        let collections = contexts
            .iter()
            .map(|ctx| CollectionSnapshot::capture(ctx, &guard))
            .collect();
        let min_pinned_epoch = epochs.min_pinned_epoch();
        let epoch_lag = epochs.epoch_lag();
        let indirection = IndirectionLoad {
            live_entries: runtime.indirection.live_entries(),
            quarantined_entries: runtime.indirection.quarantined_entries(),
            deferred_entries: runtime.indirection.deferred_len() as u64,
            capacity: runtime.indirection.capacity() as u64,
        };
        let watermark = Watermark {
            pinned_epoch: guard.epoch(),
            global_epoch_begin,
            global_epoch_end: epochs.global_epoch(),
            relocation_epoch,
            in_moving_phase,
        };
        let pin_hold = epochs.pin_hold_ns().summary();
        drop(guard);
        Ok(HeapSnapshot {
            watermark,
            collections,
            indirection,
            epoch_lag,
            min_pinned_epoch,
            pin_hold,
            alloc: runtime.alloc_snapshot(),
        })
    }

    /// Totals across all collections: `(valid, limbo, holes, blocks)`.
    pub fn totals(&self) -> (u64, u64, u64, usize) {
        let mut t = (0, 0, 0, 0);
        for c in &self.collections {
            t.0 += c.valid_slots;
            t.1 += c.limbo_slots;
            t.2 += c.hole_slots;
            t.3 += c.block_count();
        }
        t
    }

    /// Serializes the snapshot (the document `smc-top --json` prints).
    pub fn to_json(&self) -> JsonValue {
        let mut doc = JsonValue::obj();
        doc.set("schema", "smc-heap-snapshot/v1");
        let mut wm = JsonValue::obj();
        wm.set("pinned_epoch", self.watermark.pinned_epoch);
        wm.set("global_epoch_begin", self.watermark.global_epoch_begin);
        wm.set("global_epoch_end", self.watermark.global_epoch_end);
        wm.set("relocation_epoch", self.watermark.relocation_epoch);
        wm.set("in_moving_phase", self.watermark.in_moving_phase);
        wm.set("consistent", self.watermark.consistent());
        doc.set("watermark", wm);
        doc.set("epoch_lag", self.epoch_lag);
        match self.min_pinned_epoch {
            Some(e) => doc.set("min_pinned_epoch", e),
            None => doc.set("min_pinned_epoch", JsonValue::Null),
        }
        let mut ind = JsonValue::obj();
        ind.set("live_entries", self.indirection.live_entries);
        ind.set("quarantined_entries", self.indirection.quarantined_entries);
        ind.set("deferred_entries", self.indirection.deferred_entries);
        ind.set("capacity", self.indirection.capacity);
        ind.set("load_factor", self.indirection.load_factor());
        doc.set("indirection", ind);
        let mut ph = JsonValue::obj();
        ph.set("count", self.pin_hold.count);
        ph.set("p50_ns", self.pin_hold.p50);
        ph.set("p95_ns", self.pin_hold.p95);
        ph.set("p99_ns", self.pin_hold.p99);
        ph.set("max_ns", self.pin_hold.max);
        doc.set("pin_hold_ns", ph);
        let mut al = JsonValue::obj();
        al.set("sharded", self.alloc.sharded);
        al.set("budgeted_blocks", self.alloc.budgeted_blocks);
        al.set("cached_blocks", self.alloc.cached_blocks);
        al.set("blocks_recycled", self.alloc.blocks_recycled);
        al.set("remote_frees", self.alloc.remote_frees);
        al.set("remote_frees_drained", self.alloc.remote_frees_drained);
        let slabs = self
            .alloc
            .slab_classes
            .iter()
            .map(|s| {
                let mut sj = JsonValue::obj();
                sj.set("cell_size", s.cell_size);
                sj.set("pages", s.pages);
                sj.set("cells_live", s.cells_live);
                sj.set("cells_free", s.cells_free);
                sj.set("cells_capacity", s.cells_capacity);
                sj.set("cells_allocated_total", s.cells_allocated_total);
                sj
            })
            .collect();
        al.set("slab_classes", JsonValue::Arr(slabs));
        doc.set("alloc", al);
        let collections = self
            .collections
            .iter()
            .map(|c| {
                let mut cj = JsonValue::obj();
                cj.set("context_id", c.context_id);
                cj.set("blocks", c.block_count());
                cj.set("groups", c.groups);
                cj.set("valid_slots", c.valid_slots);
                cj.set("limbo_slots", c.limbo_slots);
                cj.set("hole_slots", c.hole_slots);
                cj.set("capacity_slots", c.capacity_slots);
                cj.set("occupancy", c.occupancy());
                cj.set("live_bytes", c.live_bytes());
                cj.set("dead_bytes", c.dead_bytes());
                cj.set("hole_bytes", c.hole_bytes());
                cj.set("footprint_bytes", c.footprint_bytes());
                match c.budget_bytes {
                    Some(b) => cj.set("budget_bytes", b),
                    None => cj.set("budget_bytes", JsonValue::Null),
                }
                cj.set("budget_used_bytes", c.footprint_bytes());
                cj.set("spilled_blocks", c.spilled_blocks);
                cj.set("spilled_objects", c.spilled_objects);
                cj.set("incarnation_churn", c.incarnation_churn);
                let blocks = c
                    .blocks
                    .iter()
                    .map(|b| {
                        let mut bj = JsonValue::obj();
                        bj.set("block_id", b.block_id);
                        bj.set("capacity", b.capacity);
                        bj.set("valid", b.valid);
                        bj.set("limbo", b.limbo);
                        bj.set("holes", b.holes);
                        bj.set("occupancy", b.occupancy());
                        bj.set("incarnation_churn", b.incarnation_churn);
                        bj.set("compacting", b.compacting);
                        bj.set("in_group", b.in_group);
                        bj
                    })
                    .collect();
                cj.set("block_detail", JsonValue::Arr(blocks));
                cj
            })
            .collect();
        doc.set("collections", JsonValue::Arr(collections));
        doc
    }
}

/// Payload bytes per slot for occupancy-to-bytes conversion.
fn slot_bytes(ctx: &MemoryContext) -> u32 {
    let layout = ctx.layout();
    if layout.slot_stride > 0 {
        layout.slot_stride
    } else {
        layout.store_len / layout.capacity.max(1)
    }
}

/// Reads one block's counters and walks its allocated prefix for
/// incarnation churn. All reads are atomic loads on live memory — the
/// caller's pinned guard keeps the block resident (module docs).
fn block_snapshot(ctx: &MemoryContext, block: &BlockRef, in_group: bool) -> BlockSnapshot {
    let h = block.header();
    let capacity = h.capacity;
    let valid = h.valid_count.load(Ordering::Acquire).min(capacity);
    let limbo = h.limbo_count.load(Ordering::Acquire).min(capacity);
    let cursor = h.alloc_cursor.load(Ordering::Acquire).min(capacity);
    // Free slots inside the allocated prefix. Saturating: valid/limbo/
    // cursor are read at slightly different instants under concurrent
    // writers, so the difference can transiently undershoot.
    let holes = cursor.saturating_sub(valid).saturating_sub(limbo);
    let mut churn = 0u64;
    for slot in 0..cursor {
        churn += ctx.slot_inc(block, slot).incarnation() as u64;
    }
    BlockSnapshot {
        block_id: h.block_id,
        capacity,
        valid,
        limbo,
        holes,
        alloc_cursor: cursor,
        incarnation_churn: churn,
        compacting: h.compacting.load(Ordering::Acquire) != 0,
        in_group,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::type_id_of;
    use crate::context::ContextConfig;
    use crate::runtime::Runtime;
    use std::sync::Arc;

    fn context(rt: &Arc<Runtime>) -> MemoryContext {
        MemoryContext::new_rows(
            rt.clone(),
            64,
            8,
            type_id_of::<[u64; 8]>(),
            ContextConfig::default(),
        )
        .expect("layout fits a block")
    }

    fn alloc(c: &MemoryContext, v: u64) -> crate::context::Allocation {
        c.alloc_with(|block, slot| unsafe { block.obj_ptr(slot).cast::<u64>().write(v) })
            .unwrap()
    }

    #[test]
    fn empty_heap_snapshot_is_consistent_and_zero() {
        let rt = Runtime::new();
        let ctx = context(&rt);
        let snap = HeapSnapshot::capture(&rt, &[&ctx]);
        assert!(snap.watermark.consistent());
        assert_eq!(snap.totals(), (0, 0, 0, 0));
        assert_eq!(snap.collections.len(), 1);
        assert_eq!(snap.collections[0].occupancy(), 0.0);
        let json = snap.to_json().to_json();
        assert!(json.contains("\"schema\":\"smc-heap-snapshot/v1\""));
        assert!(json.contains("\"consistent\":true"));
    }

    #[test]
    fn snapshot_counts_live_limbo_and_churn() {
        let rt = Runtime::new();
        let ctx = context(&rt);
        let mut allocs = Vec::new();
        for i in 0..100 {
            allocs.push(alloc(&ctx, i));
        }
        let snap = HeapSnapshot::capture(&rt, &[&ctx]);
        let c = &snap.collections[0];
        assert_eq!(c.valid_slots, 100);
        assert_eq!(c.limbo_slots, 0);
        assert!(c.occupancy() > 0.0);
        assert_eq!(c.live_bytes(), 100 * c.slot_bytes as u64);
        // Free 40: they enter limbo until their removal epoch passes.
        for a in allocs.drain(..40) {
            assert!(ctx.free(a.entry, a.entry_inc));
        }
        let snap = HeapSnapshot::capture(&rt, &[&ctx]);
        let c = &snap.collections[0];
        assert_eq!(c.valid_slots, 60);
        assert_eq!(c.limbo_slots, 40);
        assert_eq!(c.dead_bytes(), 40 * c.slot_bytes as u64);
        assert!(snap.watermark.consistent());
        // The snapshot itself was pinned while capturing, so the pin-hold
        // histogram gained samples and indirection shows the live entries.
        assert!(snap.pin_hold.count > 0);
        assert_eq!(snap.indirection.live_entries, 60);
    }

    #[test]
    fn snapshot_reconciles_with_verify_when_quiescent() {
        let rt = Runtime::new();
        let ctx = context(&rt);
        let mut allocs = Vec::new();
        for i in 0..500 {
            allocs.push(alloc(&ctx, i));
        }
        for a in allocs.drain(..250) {
            assert!(ctx.free(a.entry, a.entry_inc));
        }
        let report = ctx.verify().expect("quiescent heap verifies");
        let snap = HeapSnapshot::capture(&rt, &[&ctx]);
        let c = &snap.collections[0];
        assert_eq!(c.valid_slots, report.valid_slots);
        assert_eq!(c.block_count(), report.blocks);
        assert!(
            c.limbo_slots >= report.limbo_slots,
            "snapshot limbo {} < verify limbo {}",
            c.limbo_slots,
            report.limbo_slots
        );
    }
}
