//! The global indirection table (§3.2).
//!
//! Object references do not store the address of the object's memory slot;
//! they point at an *indirection table entry*, which in turn points at the
//! slot. This level of indirection is what makes compaction possible: moving
//! an object requires only an atomic update of the entry's pointer, never a
//! scan for references held by the application (§5.1).
//!
//! Each entry also carries an incarnation word. Indirect references validate
//! against it, which "allows us to reuse empty indirection table entries and
//! memory blocks for different types without breaking our type guarantees"
//! (§3.2): releasing an entry bumps its incarnation, so stale references fail
//! their check no matter who reuses the entry.
//!
//! Entries live in address-stable chunks (never moved or shrunk); freed
//! entries are recycled through sharded free lists to keep multi-threaded
//! allocation cheap (Fig 7 allocates tens of millions of objects per second
//! across threads).

use std::ptr::NonNull;
use std::sync::atomic::Ordering;

use crate::incarnation::{IncWord, INC_LIMIT};
use crate::sync::{AtomicU64, AtomicUsize, Mutex};

/// Entries per chunk; chunks are allocated as the table grows and are never
/// released until the table is dropped.
pub const CHUNK_ENTRIES: usize = 4096;

/// Number of free-list shards (power of two).
const SHARDS: usize = 16;

/// One indirection table entry.
///
/// `payload` is the address of the object's slot data for row layouts, or a
/// packed `(block id, slot id)` pair for columnar layouts (§4.1) — the owner
/// of the context decides the interpretation. `0` means null.
#[derive(Debug)]
#[repr(C)]
pub struct IndirEntry {
    payload: AtomicUsize,
    inc: IncWord,
}

impl IndirEntry {
    /// Loads the payload (slot address or packed columnar locator).
    #[inline]
    pub fn load_payload(&self, order: Ordering) -> usize {
        self.payload.load(order)
    }

    /// Stores the payload.
    #[inline]
    pub fn store_payload(&self, value: usize, order: Ordering) {
        self.payload.store(value, order)
    }

    /// The entry's incarnation word (checked by indirect references).
    #[inline]
    pub fn inc(&self) -> &IncWord {
        &self.inc
    }
}

/// A stable, copyable handle to an [`IndirEntry`].
///
/// Valid for as long as the owning [`IndirectionTable`] is alive; the `smc`
/// crate guarantees this by routing every dereference through a collection
/// handle that keeps the runtime (and thus the table) alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntryRef(NonNull<IndirEntry>);

// SAFETY: entries are shared, internally-synchronized atomics.
unsafe impl Send for EntryRef {}
unsafe impl Sync for EntryRef {}

impl EntryRef {
    /// Dereferences the handle.
    ///
    /// Safe because the table never frees or moves chunks while alive, and
    /// the crate-internal callers all hold the runtime alive.
    #[inline]
    pub fn get(&self) -> &IndirEntry {
        unsafe { self.0.as_ref() }
    }

    /// The raw address of the entry, used for back-pointer storage inside
    /// memory blocks.
    #[inline]
    pub fn addr(&self) -> usize {
        self.0.as_ptr() as usize
    }

    /// Rebuilds a handle from a back-pointer address previously produced by
    /// [`addr`](Self::addr).
    ///
    /// # Safety
    /// `addr` must have come from `EntryRef::addr` of an entry in a table
    /// that is still alive.
    #[inline]
    pub unsafe fn from_addr(addr: usize) -> EntryRef {
        EntryRef(NonNull::new_unchecked(addr as *mut IndirEntry))
    }
}

/// The growable, address-stable table of indirection entries.
#[derive(Debug)]
pub struct IndirectionTable {
    chunks: Mutex<Vec<Box<[IndirEntry]>>>,
    free: [Mutex<Vec<EntryRef>>; SHARDS],
    /// Entries released but not yet reusable: a direct pointer may still
    /// chase a forwarding tombstone (§6) through them until the epochs of
    /// every in-flight critical section have passed.
    deferred: Mutex<std::collections::VecDeque<(EntryRef, u64)>>,
    live: AtomicU64,
    quarantined: AtomicU64,
}

impl IndirectionTable {
    /// An empty table.
    pub fn new() -> Self {
        IndirectionTable {
            chunks: Mutex::new(Vec::new()),
            free: std::array::from_fn(|_| Mutex::new(Vec::new())),
            deferred: Mutex::new(std::collections::VecDeque::new()),
            live: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// Allocates an entry. `shard_hint` (typically a thread index) spreads
    /// contention across free-list shards.
    ///
    /// The returned entry keeps whatever incarnation its previous life ended
    /// with — references to the previous occupant already fail their check
    /// because release bumped the incarnation.
    pub fn allocate(&self, shard_hint: usize) -> EntryRef {
        let home = shard_hint & (SHARDS - 1);
        // Try the home shard, then steal from the others.
        for offset in 0..SHARDS {
            let shard = &self.free[(home + offset) & (SHARDS - 1)];
            if let Some(entry) = shard.lock().pop() {
                entry.get().store_payload(0, Ordering::Release);
                self.live.fetch_add(1, Ordering::Relaxed);
                return entry;
            }
        }
        // All shards empty: grow by one chunk and refill the home shard.
        let mut chunks = self.chunks.lock();
        // Another thread may have refilled while we waited for the lock.
        if let Some(entry) = self.free[home].lock().pop() {
            entry.get().store_payload(0, Ordering::Release);
            self.live.fetch_add(1, Ordering::Relaxed);
            return entry;
        }
        let chunk: Box<[IndirEntry]> = (0..CHUNK_ENTRIES)
            .map(|_| IndirEntry {
                payload: AtomicUsize::new(0),
                inc: IncWord::new(0),
            })
            .collect();
        let first = EntryRef(NonNull::from(&chunk[0]));
        {
            let mut shard = self.free[home].lock();
            for e in chunk.iter().skip(1) {
                shard.push(EntryRef(NonNull::from(e)));
            }
        }
        chunks.push(chunk);
        self.live.fetch_add(1, Ordering::Relaxed);
        first
    }

    /// Returns an entry to the free lists after its object was freed.
    ///
    /// The caller must already have bumped the entry's incarnation (that is
    /// part of `free`'s protocol, §3.5); entries whose incarnation counter
    /// reached its limit are quarantined instead of reused — the paper's
    /// overflow rule ("we stop reusing these memory slots", §3.1).
    pub fn release(&self, entry: EntryRef, shard_hint: usize) {
        self.live.fetch_sub(1, Ordering::Relaxed);
        if entry.get().inc().incarnation() >= INC_LIMIT - 1 {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
            return;
        }
        entry.get().store_payload(0, Ordering::Release);
        self.free[shard_hint & (SHARDS - 1)].lock().push(entry);
    }

    /// Releases an entry for reuse no earlier than global epoch `ready_at`.
    /// Used by `free`: a stale direct pointer following a tombstone reads
    /// this entry, so it must survive every critical section that could
    /// still hold such a pointer (two epochs, like memory slots).
    pub fn release_at(&self, entry: EntryRef, ready_at: u64) {
        self.live.fetch_sub(1, Ordering::Relaxed);
        if entry.get().inc().incarnation() >= INC_LIMIT - 1 {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.deferred.lock().push_back((entry, ready_at));
    }

    /// Moves deferred entries whose epoch has passed onto the free lists.
    /// Called from allocation slow paths with the current global epoch.
    pub fn drain_deferred(&self, now: u64) {
        let mut deferred = self.deferred.lock();
        // Entries are queued in epoch order; stop at the first unready one.
        let mut batch = 0;
        while let Some(&(entry, ready_at)) = deferred.front() {
            if ready_at > now || batch >= 256 {
                break;
            }
            deferred.pop_front();
            entry.get().store_payload(0, Ordering::Release);
            self.free[batch & (SHARDS - 1)].lock().push(entry);
            batch += 1;
        }
    }

    /// Entries waiting in the deferred queue.
    pub fn deferred_len(&self) -> usize {
        self.deferred.lock().len()
    }

    /// Number of live (allocated, unreleased) entries.
    pub fn live_entries(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// Number of entries permanently retired due to incarnation overflow.
    pub fn quarantined_entries(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Total entries the table has ever materialized.
    pub fn capacity(&self) -> usize {
        self.chunks.lock().len() * CHUNK_ENTRIES
    }
}

impl Default for IndirectionTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_initializes_null_payload() {
        let t = IndirectionTable::new();
        let e = t.allocate(0);
        assert_eq!(e.get().load_payload(Ordering::Acquire), 0);
        assert_eq!(t.live_entries(), 1);
        assert_eq!(t.capacity(), CHUNK_ENTRIES);
    }

    #[test]
    fn release_allows_reuse_with_bumped_incarnation() {
        let t = IndirectionTable::new();
        let e = t.allocate(0);
        e.get().store_payload(0xdead0, Ordering::Release);
        let old_inc = e.get().inc().incarnation();
        e.get().inc().bump();
        t.release(e, 0);
        assert_eq!(t.live_entries(), 0);
        // Reuse comes from the same shard; find our entry again.
        let mut found = false;
        for _ in 0..CHUNK_ENTRIES {
            let e2 = t.allocate(0);
            if e2 == e {
                assert_ne!(e2.get().inc().incarnation(), old_inc);
                assert_eq!(e2.get().load_payload(Ordering::Acquire), 0);
                found = true;
                break;
            }
        }
        assert!(found, "released entry should be recycled");
    }

    #[test]
    fn addr_round_trip() {
        let t = IndirectionTable::new();
        let e = t.allocate(3);
        let addr = e.addr();
        let e2 = unsafe { EntryRef::from_addr(addr) };
        assert_eq!(e, e2);
    }

    #[test]
    fn grows_beyond_one_chunk() {
        let t = IndirectionTable::new();
        let entries: Vec<_> = (0..CHUNK_ENTRIES * 2 + 5).map(|i| t.allocate(i)).collect();
        assert!(t.capacity() >= CHUNK_ENTRIES * 2);
        // All distinct.
        let set: std::collections::HashSet<_> = entries.iter().map(|e| e.addr()).collect();
        assert_eq!(set.len(), entries.len());
    }

    #[test]
    fn entries_are_address_stable_across_growth() {
        let t = IndirectionTable::new();
        let first = t.allocate(0);
        first.get().store_payload(42, Ordering::Release);
        for i in 0..CHUNK_ENTRIES * 3 {
            t.allocate(i);
        }
        assert_eq!(first.get().load_payload(Ordering::Acquire), 42);
    }

    #[test]
    fn overflowed_entries_are_quarantined() {
        let t = IndirectionTable::new();
        let e = t.allocate(0);
        // Force the incarnation to the limit, then release.
        e.get().inc().store(INC_LIMIT - 1, Ordering::Release);
        t.release(e, 0);
        assert_eq!(t.quarantined_entries(), 1);
        // The quarantined entry must not come back.
        for i in 0..CHUNK_ENTRIES * 2 {
            assert_ne!(t.allocate(i), e);
        }
    }

    #[test]
    fn concurrent_allocate_release() {
        let t = std::sync::Arc::new(IndirectionTable::new());
        let mut handles = Vec::new();
        for tid in 0..8 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                let mut held = Vec::new();
                for i in 0..2000 {
                    held.push(t.allocate(tid));
                    if i % 3 == 0 {
                        let e: EntryRef = held.swap_remove(held.len() / 2);
                        e.get().inc().bump();
                        t.release(e, tid);
                    }
                }
                held.len() as u64
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(t.live_entries(), total);
    }
}
