//! The off-heap memory runtime shared by all contexts and collections.
//!
//! The paper extends the managed runtime with an off-heap memory system
//! whose `alloc`/`free` are "part of the runtime API and are called by the
//! collection implementation as needed" (§2). [`Runtime`] is that API
//! surface: it owns the global epoch state, the global indirection table,
//! the compaction coordination flags of §5.1, and a *graveyard* of blocks
//! awaiting epoch-safe return to the OS.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::block::BlockRef;
use crate::epoch::{EpochManager, Guard};
use crate::indirection::IndirectionTable;
use crate::stats::MemoryStats;

/// Shared state of one off-heap memory system instance.
///
/// Collections hold an `Arc<Runtime>`; every dereference, allocation and
/// compaction goes through it. Multiple independent runtimes may coexist
/// (each test gets its own), mirroring how the paper's system is a runtime
/// service rather than global state.
#[derive(Debug)]
pub struct Runtime {
    /// Epoch-based reclamation state (§3.4).
    pub epochs: Arc<EpochManager>,
    /// The global indirection table (§3.2).
    pub indirection: IndirectionTable,
    /// Observability counters.
    pub stats: MemoryStats,
    /// Serializes compaction passes ("the compaction thread", §5.1 — one at
    /// a time per runtime).
    pub(crate) compaction_mutex: Mutex<()>,
    /// Blocks whose contexts released them, awaiting the epoch at which no
    /// reader can still hold pointers into them.
    graveyard: Mutex<Vec<(BlockRef, u64)>>,
    next_context_id: AtomicU64,
}

impl Runtime {
    /// Creates a fresh runtime with epoch 0.
    pub fn new() -> Arc<Runtime> {
        Arc::new(Runtime {
            epochs: EpochManager::new(),
            indirection: IndirectionTable::new(),
            stats: MemoryStats::new(),
            compaction_mutex: Mutex::new(()),
            graveyard: Mutex::new(Vec::new()),
            next_context_id: AtomicU64::new(1),
        })
    }

    /// Enters a critical section (§3.4). All object dereferences require the
    /// returned guard.
    pub fn pin(&self) -> Guard<'_> {
        self.epochs.pin()
    }

    /// Current global epoch.
    pub fn global_epoch(&self) -> u64 {
        self.epochs.global_epoch()
    }

    /// Allocates a context identifier.
    pub(crate) fn next_context_id(&self) -> u64 {
        self.next_context_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The announced relocation epoch (0 if no compaction is pending).
    #[inline]
    pub fn next_relocation_epoch(&self) -> u64 {
        self.epochs.next_relocation_epoch()
    }

    /// True while the in-flight compaction is in its moving phase.
    #[inline]
    pub fn in_moving_phase(&self) -> bool {
        self.epochs.in_moving_phase()
    }

    pub(crate) fn set_relocation_epoch(&self, e: u64) {
        self.epochs.set_relocation_epoch(e);
    }

    pub(crate) fn set_moving_phase(&self, on: bool) {
        self.epochs.set_moving_phase(on);
    }

    /// Hands a block to the graveyard, to be returned to the OS once the
    /// global epoch reaches `free_at`.
    pub(crate) fn bury_block(&self, block: BlockRef, free_at: u64) {
        self.graveyard.lock().push((block, free_at));
    }

    /// Opportunistically frees graveyard blocks whose epoch has passed.
    /// Called from allocation slow paths; also usable directly.
    pub fn drain_graveyard(&self) -> usize {
        let now = self.global_epoch();
        let mut yard = self.graveyard.lock();
        let before = yard.len();
        yard.retain(|(block, free_at)| {
            if *free_at <= now {
                unsafe { block.deallocate() };
                MemoryStats::inc(&self.stats.blocks_freed);
                let live = &self.stats.blocks_live;
                live.fetch_sub(1, Ordering::Relaxed);
                false
            } else {
                true
            }
        });
        before - yard.len()
    }

    /// Number of blocks awaiting burial.
    pub fn graveyard_len(&self) -> usize {
        self.graveyard.lock().len()
    }

    /// Advances epochs until every graveyard block is freed. Used by tests
    /// and shutdown paths; must not be called while this thread holds a
    /// [`Guard`] (the epoch could then never advance far enough).
    pub fn drain_graveyard_blocking(&self) {
        while self.graveyard_len() > 0 {
            if self.drain_graveyard() == 0 {
                let _ = self.epochs.try_advance();
                std::hint::spin_loop();
            }
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // No Arc<Runtime> clones remain, so no guard obtained from this
        // runtime can still be alive; every graveyard block is quiescent.
        let mut yard = self.graveyard.lock();
        for (block, _) in yard.drain(..) {
            unsafe { block.deallocate() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{type_id_of, BlockLayout};

    #[test]
    fn pin_and_epoch_pass_through() {
        let rt = Runtime::new();
        assert_eq!(rt.global_epoch(), 0);
        let g = rt.pin();
        assert_eq!(g.epoch(), 0);
        drop(g);
        assert!(rt.epochs.try_advance().is_some());
        assert_eq!(rt.global_epoch(), 1);
    }

    #[test]
    fn graveyard_respects_epochs() {
        let rt = Runtime::new();
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        let b = BlockRef::allocate(&layout, type_id_of::<u64>(), 1).unwrap();
        MemoryStats::inc(&rt.stats.blocks_live);
        rt.bury_block(b, 2);
        assert_eq!(rt.drain_graveyard(), 0, "epoch 0 < 2: must not free");
        rt.epochs.try_advance();
        rt.epochs.try_advance();
        assert_eq!(rt.drain_graveyard(), 1);
        assert_eq!(rt.graveyard_len(), 0);
        assert_eq!(MemoryStats::get(&rt.stats.blocks_freed), 1);
    }

    #[test]
    fn drain_blocking_advances_epochs() {
        let rt = Runtime::new();
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        let b = BlockRef::allocate(&layout, type_id_of::<u64>(), 1).unwrap();
        MemoryStats::inc(&rt.stats.blocks_live);
        rt.bury_block(b, 5);
        rt.drain_graveyard_blocking();
        assert!(rt.global_epoch() >= 5);
        assert_eq!(rt.graveyard_len(), 0);
    }

    #[test]
    fn runtime_drop_frees_graveyard() {
        let rt = Runtime::new();
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        let b = BlockRef::allocate(&layout, type_id_of::<u64>(), 1).unwrap();
        rt.bury_block(b, u64::MAX); // would never free by epoch
        drop(rt); // must free anyway, without leaking
    }

    #[test]
    fn relocation_flags_default_off() {
        let rt = Runtime::new();
        assert_eq!(rt.next_relocation_epoch(), 0);
        assert!(!rt.in_moving_phase());
    }

    #[test]
    fn context_ids_are_unique() {
        let rt = Runtime::new();
        let a = rt.next_context_id();
        let b = rt.next_context_id();
        assert_ne!(a, b);
    }
}
