//! The off-heap memory runtime shared by all contexts and collections.
//!
//! The paper extends the managed runtime with an off-heap memory system
//! whose `alloc`/`free` are "part of the runtime API and are called by the
//! collection implementation as needed" (§2). [`Runtime`] is that API
//! surface: it owns the global epoch state, the global indirection table,
//! the compaction coordination flags of §5.1, and a *graveyard* of blocks
//! awaiting epoch-safe return to the OS.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::block::{BlockLayout, BlockRef, BLOCK_SIZE};
use crate::epoch::{EpochManager, Guard};
use crate::error::MemError;
use crate::fault::{FaultInjector, FaultSite};
use crate::indirection::IndirectionTable;
use crate::stats::MemoryStats;
use crate::sync::{AtomicU64, Mutex};

/// Attempts the allocation recovery ladder makes before conceding
/// [`MemError::OutOfMemory`].
pub const MAX_ALLOC_ATTEMPTS: u32 = 4;

/// Shared state of one off-heap memory system instance.
///
/// Collections hold an `Arc<Runtime>`; every dereference, allocation and
/// compaction goes through it. Multiple independent runtimes may coexist
/// (each test gets its own), mirroring how the paper's system is a runtime
/// service rather than global state.
#[derive(Debug)]
pub struct Runtime {
    /// Epoch-based reclamation state (§3.4).
    pub epochs: Arc<EpochManager>,
    /// The global indirection table (§3.2).
    pub indirection: IndirectionTable,
    /// Observability counters (shared with the fault registry).
    pub stats: Arc<MemoryStats>,
    /// Failpoint registry covering blocks, epochs, thread slots, relocation.
    faults: Arc<FaultInjector>,
    /// Cap on live block bytes; `u64::MAX` means unlimited.
    budget_bytes: AtomicU64,
    /// Serializes compaction passes ("the compaction thread", §5.1 — one at
    /// a time per runtime).
    pub(crate) compaction_mutex: Mutex<()>,
    /// Blocks whose contexts released them, awaiting the epoch at which no
    /// reader can still hold pointers into them.
    graveyard: Mutex<Vec<(BlockRef, u64)>>,
    /// Spill stubs ([`crate::spill::SpillStub`]) whose pages faulted back in,
    /// awaiting the epoch at which no pinned reader can still dereference
    /// the tagged payload it loaded before the fault-in. Stored as raw
    /// `Box::into_raw` addresses.
    stub_graveyard: Mutex<Vec<(usize, u64)>>,
    next_context_id: AtomicU64,
}

impl Runtime {
    /// Creates a fresh runtime with epoch 0 and no memory budget.
    pub fn new() -> Arc<Runtime> {
        Self::with_budget(None)
    }

    /// Creates a fresh runtime whose live block bytes are capped at
    /// `budget_bytes` (`None` = unlimited). When an allocation would exceed
    /// the budget, [`allocate_block`](Self::allocate_block) runs a bounded
    /// recovery ladder before surfacing [`MemError::OutOfMemory`].
    pub fn with_budget(budget_bytes: Option<u64>) -> Arc<Runtime> {
        let stats = Arc::new(MemoryStats::new());
        let faults = Arc::new(FaultInjector::new(stats.clone()));
        Arc::new(Runtime {
            epochs: EpochManager::with_faults(faults.clone()),
            indirection: IndirectionTable::new(),
            stats,
            faults,
            budget_bytes: AtomicU64::new(budget_bytes.unwrap_or(u64::MAX)),
            compaction_mutex: Mutex::new(()),
            graveyard: Mutex::new(Vec::new()),
            stub_graveyard: Mutex::new(Vec::new()),
            next_context_id: AtomicU64::new(1),
        })
    }

    /// The failpoint registry of this runtime (disarmed by default).
    pub fn faults(&self) -> &Arc<FaultInjector> {
        &self.faults
    }

    /// Sets or clears the live-block byte budget at runtime.
    pub fn set_memory_budget(&self, budget_bytes: Option<u64>) {
        self.budget_bytes
            .store(budget_bytes.unwrap_or(u64::MAX), Ordering::Relaxed);
    }

    /// The current byte budget, if one is set.
    pub fn memory_budget(&self) -> Option<u64> {
        match self.budget_bytes.load(Ordering::Relaxed) {
            u64::MAX => None,
            b => Some(b),
        }
    }

    /// Enters a critical section (§3.4). All object dereferences require the
    /// returned guard. Panics if the epoch thread registry is exhausted; use
    /// [`try_pin`](Self::try_pin) where that must be an error.
    pub fn pin(&self) -> Guard<'_> {
        MemoryStats::inc(&self.stats.pins_taken);
        self.epochs.pin()
    }

    /// Fallible [`pin`](Self::pin).
    pub fn try_pin(&self) -> Result<Guard<'_>, MemError> {
        let guard = self.epochs.try_pin()?;
        MemoryStats::inc(&self.stats.pins_taken);
        Ok(guard)
    }

    /// Allocates one block against the budget, with fault injection and the
    /// recovery ladder. All block allocations of the memory system route
    /// through here (contexts' thread blocks and compaction destinations).
    ///
    /// On budget exhaustion the ladder, per attempt: (1) frees every
    /// epoch-ready graveyard block and deferred indirection entry; (2) forces
    /// an emergency epoch advance so limbo memory ripens (unless a compaction
    /// holds the advance reservation); (3) backs off briefly to let
    /// concurrent frees land. After [`MAX_ALLOC_ATTEMPTS`] failed attempts it
    /// returns [`MemError::OutOfMemory`].
    pub fn allocate_block(
        &self,
        layout: &BlockLayout,
        type_id: u64,
        context_id: u64,
    ) -> Result<BlockRef, MemError> {
        if self.faults.should_fail(FaultSite::BlockAlloc) {
            // Simulated hard OS failure: no recovery, straight to the caller.
            return Err(MemError::OutOfMemory);
        }
        let mut attempt = 0u32;
        loop {
            if self.try_reserve_block() {
                let block = match BlockRef::allocate(layout, type_id, context_id) {
                    Ok(b) => b,
                    Err(e) => {
                        self.stats.blocks_live.fetch_sub(1, Ordering::Relaxed);
                        return Err(e);
                    }
                };
                MemoryStats::inc(&self.stats.blocks_allocated);
                if attempt > 0 {
                    MemoryStats::inc(&self.stats.oom_recoveries);
                }
                return Ok(block);
            }
            if attempt >= MAX_ALLOC_ATTEMPTS {
                return Err(MemError::OutOfMemory);
            }
            attempt += 1;
            MemoryStats::inc(&self.stats.alloc_retries);
            self.recover_memory(attempt);
        }
    }

    /// Reserves budget for one block by incrementing `blocks_live` if the
    /// result still fits. The CAS makes budget enforcement exact under
    /// concurrent allocators; `drain_graveyard` decrements the same gauge
    /// when blocks return to the OS.
    fn try_reserve_block(&self) -> bool {
        let budget = self.budget_bytes.load(Ordering::Relaxed);
        loop {
            let live = self.stats.blocks_live.load(Ordering::Relaxed);
            if budget != u64::MAX && (live + 1).saturating_mul(BLOCK_SIZE as u64) > budget {
                return false;
            }
            if self
                .stats
                .blocks_live
                .compare_exchange(live, live + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
    }

    /// One rung of the budget-exhaustion recovery ladder.
    fn recover_memory(&self, attempt: u32) {
        // (1) Free whatever is already epoch-ready.
        let mut freed = self.drain_graveyard();
        self.indirection.drain_deferred(self.global_epoch());
        // (2) Ripen limbo memory: graveyard blocks and deferred entries wait
        // for epochs, so force one advance unless a compaction reserved it.
        let advanced = self.next_relocation_epoch() == 0 && self.epochs.try_advance().is_some();
        if advanced {
            MemoryStats::inc(&self.stats.emergency_epoch_advances);
            MemoryStats::inc(&self.stats.epoch_advances);
        }
        let ripened = self.drain_graveyard();
        freed += ripened;
        smc_obs::trace::emit(smc_obs::Event::RecoveryStep {
            attempt: attempt as u64,
            freed_blocks: freed as u64,
            advanced,
        });
        if ripened > 0 {
            return;
        }
        // (3) Capped backoff: concurrent removals/compactions may free blocks.
        crate::sync::backoff(attempt);
    }

    /// Current global epoch.
    pub fn global_epoch(&self) -> u64 {
        self.epochs.global_epoch()
    }

    /// Allocates a context identifier.
    pub(crate) fn next_context_id(&self) -> u64 {
        self.next_context_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The announced relocation epoch (0 if no compaction is pending).
    #[inline]
    pub fn next_relocation_epoch(&self) -> u64 {
        self.epochs.next_relocation_epoch()
    }

    /// True while the in-flight compaction is in its moving phase.
    #[inline]
    pub fn in_moving_phase(&self) -> bool {
        self.epochs.in_moving_phase()
    }

    pub(crate) fn set_relocation_epoch(&self, e: u64) {
        self.epochs.set_relocation_epoch(e);
    }

    pub(crate) fn set_moving_phase(&self, on: bool) {
        self.epochs.set_moving_phase(on);
    }

    /// Hands a block to the graveyard, to be returned to the OS once the
    /// global epoch reaches `free_at`.
    pub(crate) fn bury_block(&self, block: BlockRef, free_at: u64) {
        self.graveyard.lock().push((block, free_at));
    }

    /// Hands a spill stub (raw `Box<SpillStub>` address, tag bit stripped)
    /// to the stub graveyard, to be freed once the global epoch reaches
    /// `free_at` — after which no pinned reader can still hold the tagged
    /// payload it came from.
    pub(crate) fn bury_stub(&self, stub_addr: usize, free_at: u64) {
        self.stub_graveyard.lock().push((stub_addr, free_at));
    }

    /// Allocates one block outside the budget gate and recovery ladder.
    ///
    /// Spill fault-in must allocate a destination block while the faulting
    /// thread may itself be pinned (a dereference faults in mid-read); a
    /// pinned thread can never ripen its own victim's burial epoch, so
    /// routing through the ladder could deadlock against the budget. The
    /// transient overshoot is at most one block per concurrent faulter and
    /// settles as buried spill victims drain.
    pub(crate) fn allocate_block_unbudgeted(
        &self,
        layout: &BlockLayout,
        type_id: u64,
        context_id: u64,
    ) -> Result<BlockRef, MemError> {
        let block = BlockRef::allocate(layout, type_id, context_id)?;
        MemoryStats::inc(&self.stats.blocks_live);
        MemoryStats::inc(&self.stats.blocks_allocated);
        Ok(block)
    }

    /// Opportunistically frees graveyard blocks whose epoch has passed.
    /// Called from allocation slow paths; also usable directly.
    pub fn drain_graveyard(&self) -> usize {
        let now = self.global_epoch();
        let mut yard = self.graveyard.lock();
        let before = yard.len();
        yard.retain(|(block, free_at)| {
            if *free_at <= now {
                unsafe { block.deallocate() };
                MemoryStats::inc(&self.stats.blocks_freed);
                let live = &self.stats.blocks_live;
                live.fetch_sub(1, Ordering::Relaxed);
                false
            } else {
                true
            }
        });
        let freed = before - yard.len();
        drop(yard);
        // Ripe spill stubs ride the same epoch discipline but are not blocks:
        // they do not count toward the returned total or the block gauges.
        let mut stubs = self.stub_graveyard.lock();
        stubs.retain(|(addr, free_at)| {
            if *free_at <= now {
                drop(unsafe { Box::from_raw(*addr as *mut crate::spill::SpillStub) });
                false
            } else {
                true
            }
        });
        freed
    }

    /// Number of blocks awaiting burial.
    pub fn graveyard_len(&self) -> usize {
        self.graveyard.lock().len()
    }

    /// Advances epochs until every graveyard block is freed. Used by tests
    /// and shutdown paths; must not be called while this thread holds a
    /// [`Guard`] (the epoch could then never advance far enough).
    pub fn drain_graveyard_blocking(&self) {
        while self.graveyard_len() > 0 {
            if self.drain_graveyard() == 0 {
                let _ = self.epochs.try_advance();
                crate::sync::cpu_relax();
            }
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // No Arc<Runtime> clones remain, so no guard obtained from this
        // runtime can still be alive; every graveyard block is quiescent.
        let mut yard = self.graveyard.lock();
        for (block, _) in yard.drain(..) {
            unsafe { block.deallocate() };
        }
        drop(yard);
        let mut stubs = self.stub_graveyard.lock();
        for (addr, _) in stubs.drain(..) {
            drop(unsafe { Box::from_raw(addr as *mut crate::spill::SpillStub) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{type_id_of, BlockLayout};

    #[test]
    fn pin_and_epoch_pass_through() {
        let rt = Runtime::new();
        assert_eq!(rt.global_epoch(), 0);
        let g = rt.pin();
        assert_eq!(g.epoch(), 0);
        drop(g);
        assert!(rt.epochs.try_advance().is_some());
        assert_eq!(rt.global_epoch(), 1);
    }

    #[test]
    fn graveyard_respects_epochs() {
        let rt = Runtime::new();
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        let b = BlockRef::allocate(&layout, type_id_of::<u64>(), 1).unwrap();
        MemoryStats::inc(&rt.stats.blocks_live);
        rt.bury_block(b, 2);
        assert_eq!(rt.drain_graveyard(), 0, "epoch 0 < 2: must not free");
        rt.epochs.try_advance();
        rt.epochs.try_advance();
        assert_eq!(rt.drain_graveyard(), 1);
        assert_eq!(rt.graveyard_len(), 0);
        assert_eq!(MemoryStats::get(&rt.stats.blocks_freed), 1);
    }

    #[test]
    fn drain_blocking_advances_epochs() {
        let rt = Runtime::new();
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        let b = BlockRef::allocate(&layout, type_id_of::<u64>(), 1).unwrap();
        MemoryStats::inc(&rt.stats.blocks_live);
        rt.bury_block(b, 5);
        rt.drain_graveyard_blocking();
        assert!(rt.global_epoch() >= 5);
        assert_eq!(rt.graveyard_len(), 0);
    }

    #[test]
    fn runtime_drop_frees_graveyard() {
        let rt = Runtime::new();
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        let b = BlockRef::allocate(&layout, type_id_of::<u64>(), 1).unwrap();
        rt.bury_block(b, u64::MAX); // would never free by epoch
        drop(rt); // must free anyway, without leaking
    }

    #[test]
    fn relocation_flags_default_off() {
        let rt = Runtime::new();
        assert_eq!(rt.next_relocation_epoch(), 0);
        assert!(!rt.in_moving_phase());
    }

    #[test]
    fn context_ids_are_unique() {
        let rt = Runtime::new();
        let a = rt.next_context_id();
        let b = rt.next_context_id();
        assert_ne!(a, b);
    }

    #[test]
    fn budget_exhaustion_surfaces_out_of_memory() {
        // A two-block budget: the third allocation must fail with an error,
        // not a panic, after exhausting the recovery ladder.
        let rt = Runtime::with_budget(Some(2 * BLOCK_SIZE as u64));
        assert_eq!(rt.memory_budget(), Some(2 * BLOCK_SIZE as u64));
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        let a = rt.allocate_block(&layout, 1, 1).unwrap();
        let b = rt.allocate_block(&layout, 1, 1).unwrap();
        let third = rt.allocate_block(&layout, 1, 1);
        assert!(matches!(third, Err(MemError::OutOfMemory)));
        assert_eq!(
            MemoryStats::get(&rt.stats.alloc_retries),
            u64::from(MAX_ALLOC_ATTEMPTS)
        );
        assert_eq!(
            MemoryStats::get(&rt.stats.blocks_live),
            2,
            "failed attempt must not leak budget"
        );
        // Raising the budget unblocks allocation.
        rt.set_memory_budget(Some(3 * BLOCK_SIZE as u64));
        let c = rt.allocate_block(&layout, 1, 1).unwrap();
        for blk in [a, b, c] {
            rt.bury_block(blk, 0);
        }
        rt.drain_graveyard();
    }

    #[test]
    fn recovery_ladder_frees_graveyard_and_succeeds() {
        let rt = Runtime::with_budget(Some(BLOCK_SIZE as u64));
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        let a = rt.allocate_block(&layout, 1, 1).unwrap();
        // The only budgeted block sits in the graveyard two epochs out; the
        // ladder must advance epochs, drain it, and then succeed.
        rt.bury_block(a, rt.global_epoch() + 2);
        let b = rt
            .allocate_block(&layout, 1, 1)
            .expect("recovery ladder should free the graveyard");
        assert_eq!(MemoryStats::get(&rt.stats.oom_recoveries), 1);
        assert!(MemoryStats::get(&rt.stats.emergency_epoch_advances) >= 1);
        assert!(MemoryStats::get(&rt.stats.alloc_retries) >= 1);
        rt.bury_block(b, 0);
        rt.drain_graveyard();
    }

    #[test]
    fn injected_block_alloc_fault_is_immediate_oom() {
        let rt = Runtime::new();
        rt.faults().enable(21);
        rt.faults().set_rate(
            crate::fault::FaultSite::BlockAlloc,
            crate::fault::RATE_DENOMINATOR,
        );
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        assert!(matches!(
            rt.allocate_block(&layout, 1, 1),
            Err(MemError::OutOfMemory)
        ));
        assert_eq!(
            MemoryStats::get(&rt.stats.alloc_retries),
            0,
            "injected hard failures bypass the recovery ladder"
        );
        assert_eq!(MemoryStats::get(&rt.stats.faults_injected), 1);
        rt.faults().disable();
        let b = rt.allocate_block(&layout, 1, 1).unwrap();
        rt.bury_block(b, 0);
        rt.drain_graveyard();
    }

    #[test]
    fn unbudgeted_runtime_never_reports_budget() {
        let rt = Runtime::new();
        assert_eq!(rt.memory_budget(), None);
        rt.set_memory_budget(Some(1));
        assert_eq!(rt.memory_budget(), Some(1));
        rt.set_memory_budget(None);
        assert_eq!(rt.memory_budget(), None);
    }
}
