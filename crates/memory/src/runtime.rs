//! The off-heap memory runtime shared by all contexts and collections.
//!
//! The paper extends the managed runtime with an off-heap memory system
//! whose `alloc`/`free` are "part of the runtime API and are called by the
//! collection implementation as needed" (§2). [`Runtime`] is that API
//! surface: it owns the global epoch state, the global indirection table,
//! the compaction coordination flags of §5.1, a *graveyard* of blocks
//! awaiting epoch-safe return to the OS, and — since the allocator rework —
//! the sharded block allocator and size-class slabs of
//! [`crate::alloc`]. Block acquisition is thread-local in the common case
//! (pop from the calling thread's shard cache); the budget gate only runs
//! on the batched slow path that hands out fresh block ranges.

use std::ptr::NonNull;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::alloc::{
    AllocSnapshot, BlockAllocator, SlabAllocator, ALLOC_BATCH, MAX_SHARD_CACHE, SLAB_MAX_CELL,
};
use crate::block::{raw_alloc_block, raw_dealloc_block, BlockLayout, BlockRef, BLOCK_SIZE};
use crate::epoch::{EpochManager, Guard};
use crate::error::MemError;
use crate::fault::{FaultInjector, FaultSite};
use crate::indirection::IndirectionTable;
use crate::stats::MemoryStats;
use crate::sync::{AtomicU64, Mutex};

/// Attempts the allocation recovery ladder makes before conceding
/// [`MemError::OutOfMemory`].
pub const MAX_ALLOC_ATTEMPTS: u32 = 4;

/// Shared state of one off-heap memory system instance.
///
/// Collections hold an `Arc<Runtime>`; every dereference, allocation and
/// compaction goes through it. Multiple independent runtimes may coexist
/// (each test gets its own), mirroring how the paper's system is a runtime
/// service rather than global state.
#[derive(Debug)]
pub struct Runtime {
    /// Epoch-based reclamation state (§3.4).
    pub epochs: Arc<EpochManager>,
    /// The global indirection table (§3.2).
    pub indirection: IndirectionTable,
    /// Observability counters (shared with the fault registry).
    pub stats: Arc<MemoryStats>,
    /// Failpoint registry covering blocks, epochs, thread slots, relocation.
    faults: Arc<FaultInjector>,
    /// Cap on budgeted block bytes (live handouts + shard-cached spares);
    /// `u64::MAX` means unlimited.
    budget_bytes: AtomicU64,
    /// Sharded block allocation mechanics (shard caches, remote return
    /// queues, the budget gauge). Policy lives here in the runtime.
    pub(crate) alloc: BlockAllocator,
    /// Power-of-two size-class slabs for variable-size payloads.
    slab: SlabAllocator,
    /// Serializes compaction passes ("the compaction thread", §5.1 — one at
    /// a time per runtime).
    pub(crate) compaction_mutex: Mutex<()>,
    /// Blocks whose contexts released them, awaiting the epoch at which no
    /// reader can still hold pointers into them.
    graveyard: Mutex<Vec<(BlockRef, u64)>>,
    /// Spill stubs ([`crate::spill::SpillStub`]) whose pages faulted back in,
    /// awaiting the epoch at which no pinned reader can still dereference
    /// the tagged payload it loaded before the fault-in. Stored as raw
    /// `Box::into_raw` addresses.
    stub_graveyard: Mutex<Vec<(usize, u64)>>,
    /// Entries across both graveyards, maintained outside the locks so the
    /// per-allocation [`drain_graveyard`](Self::drain_graveyard) call can
    /// skip the mutexes entirely when there is nothing to reap. Advisory
    /// (uninstrumented): a stale zero only delays reaping to the next call.
    reclaim_pending: std::sync::atomic::AtomicU64,
    next_context_id: AtomicU64,
}

impl Runtime {
    /// Creates a fresh runtime with epoch 0 and no memory budget.
    pub fn new() -> Arc<Runtime> {
        Self::with_budget(None)
    }

    /// Creates a fresh runtime whose budgeted block bytes are capped at
    /// `budget_bytes` (`None` = unlimited). When an allocation would exceed
    /// the budget, [`allocate_block`](Self::allocate_block) runs a bounded
    /// recovery ladder before surfacing [`MemError::OutOfMemory`].
    pub fn with_budget(budget_bytes: Option<u64>) -> Arc<Runtime> {
        let stats = Arc::new(MemoryStats::new());
        let faults = Arc::new(FaultInjector::new(stats.clone()));
        Arc::new(Runtime {
            epochs: EpochManager::with_faults(faults.clone()),
            indirection: IndirectionTable::new(),
            stats,
            faults,
            budget_bytes: AtomicU64::new(budget_bytes.unwrap_or(u64::MAX)),
            alloc: BlockAllocator::new(),
            slab: SlabAllocator::new(),
            compaction_mutex: Mutex::new(()),
            graveyard: Mutex::new(Vec::new()),
            stub_graveyard: Mutex::new(Vec::new()),
            reclaim_pending: std::sync::atomic::AtomicU64::new(0),
            next_context_id: AtomicU64::new(1),
        })
    }

    /// The failpoint registry of this runtime (disarmed by default).
    pub fn faults(&self) -> &Arc<FaultInjector> {
        &self.faults
    }

    /// Sets or clears the budgeted-block byte budget at runtime.
    pub fn set_memory_budget(&self, budget_bytes: Option<u64>) {
        self.budget_bytes
            .store(budget_bytes.unwrap_or(u64::MAX), Ordering::Relaxed);
    }

    /// The current byte budget, if one is set.
    pub fn memory_budget(&self) -> Option<u64> {
        match self.budget_bytes.load(Ordering::Relaxed) {
            u64::MAX => None,
            b => Some(b),
        }
    }

    /// Enables or disables the sharded allocation fast path. Disabled, the
    /// allocator degrades to the legacy shared path (batch size 1, every
    /// free returns to the OS) — the `fig18_alloc` baseline mode.
    pub fn set_sharded_alloc(&self, on: bool) {
        self.alloc.set_sharded(on);
    }

    /// Whether the sharded allocation fast path is enabled (default: yes).
    pub fn sharded_alloc(&self) -> bool {
        self.alloc.is_sharded()
    }

    /// Enters a critical section (§3.4). All object dereferences require the
    /// returned guard. Panics if the epoch thread registry is exhausted; use
    /// [`try_pin`](Self::try_pin) where that must be an error.
    pub fn pin(&self) -> Guard<'_> {
        MemoryStats::inc(&self.stats.pins_taken);
        self.epochs.pin()
    }

    /// Fallible [`pin`](Self::pin).
    pub fn try_pin(&self) -> Result<Guard<'_>, MemError> {
        let guard = self.epochs.try_pin()?;
        MemoryStats::inc(&self.stats.pins_taken);
        Ok(guard)
    }

    /// Allocates one block against the budget, with fault injection and the
    /// recovery ladder. All block allocations of the memory system route
    /// through here (contexts' thread blocks and compaction destinations).
    ///
    /// Fast path: pop a recycled block from the calling thread's allocation
    /// shard (no budget CAS, no lock), draining the shard's remote return
    /// queue when the local list runs dry. Slow path: reserve a fresh batch
    /// of up to [`ALLOC_BATCH`] blocks against the budget, hand out one and
    /// park the rest in the shard cache.
    ///
    /// On budget exhaustion the ladder, per attempt: (1) frees every
    /// epoch-ready graveyard block and deferred indirection entry; (2) forces
    /// an emergency epoch advance so limbo memory ripens (unless a compaction
    /// holds the advance reservation); (3) backs off briefly to let
    /// concurrent frees land; and on the final attempt (4) trims idle shard
    /// caches back to the OS. After [`MAX_ALLOC_ATTEMPTS`] failed attempts it
    /// returns [`MemError::OutOfMemory`].
    pub fn allocate_block(
        &self,
        layout: &BlockLayout,
        type_id: u64,
        context_id: u64,
    ) -> Result<BlockRef, MemError> {
        if self.faults.should_fail(FaultSite::BlockAlloc) {
            // Simulated hard OS failure: no recovery, straight to the caller.
            return Err(MemError::OutOfMemory);
        }
        let (base, owner, recycled) = self.acquire_raw()?;
        let block = unsafe {
            if recycled {
                BlockRef::reuse_at(base, layout, type_id, context_id, owner)
            } else {
                BlockRef::init_at(base, layout, type_id, context_id, owner)
            }
        };
        Ok(block)
    }

    /// Acquires one raw block's memory: `(base, owner_shard_tag, recycled)`.
    /// Owns all allocation accounting (`blocks_allocated`/`blocks_live`
    /// count *handouts*, fresh or recycled) and the recovery ladder.
    fn acquire_raw(&self) -> Result<(usize, u32, bool), MemError> {
        let shard = if self.alloc.is_sharded() {
            self.epochs.thread_index().ok()
        } else {
            None
        };
        let mut attempt = 0u32;
        loop {
            if let Some(idx) = shard {
                if let Some(addr) = self.alloc.pop_cached(idx) {
                    MemoryStats::inc(&self.stats.blocks_recycled);
                    self.note_handout(attempt);
                    return Ok((addr as usize, idx as u32 + 1, true));
                }
                if self.alloc.drain_remote(idx, &self.stats) > 0 {
                    // Remote frees landed: retry the local pop before
                    // touching the budget.
                    continue;
                }
            }
            let budget = self.budget_bytes.load(Ordering::Relaxed);
            let want = if shard.is_some() { ALLOC_BATCH } else { 1 };
            let granted = self.alloc.reserve(budget, want);
            if granted > 0 {
                let base = raw_alloc_block();
                self.note_handout(attempt);
                if granted > 1 {
                    let idx = shard.expect("batched grants only on the sharded path");
                    for _ in 1..granted {
                        self.alloc.push_local(idx, raw_alloc_block() as u64);
                    }
                    MemoryStats::inc(&self.stats.alloc_batch_refills);
                }
                let owner = match shard {
                    Some(idx) => idx as u32 + 1,
                    None => u32::MAX,
                };
                return Ok((base, owner, false));
            }
            if attempt >= MAX_ALLOC_ATTEMPTS {
                return Err(MemError::OutOfMemory);
            }
            attempt += 1;
            MemoryStats::inc(&self.stats.alloc_retries);
            self.recover_memory(attempt);
        }
    }

    fn note_handout(&self, attempt: u32) {
        MemoryStats::inc(&self.stats.blocks_allocated);
        MemoryStats::inc(&self.stats.blocks_live);
        if attempt > 0 {
            MemoryStats::inc(&self.stats.oom_recoveries);
        }
    }

    /// One rung of the budget-exhaustion recovery ladder.
    fn recover_memory(&self, attempt: u32) {
        // (1) Free whatever is already epoch-ready.
        let mut freed = self.drain_graveyard();
        self.indirection.drain_deferred(self.global_epoch());
        // (2) Ripen limbo memory: graveyard blocks and deferred entries wait
        // for epochs, so force one advance unless a compaction reserved it.
        let advanced = self.next_relocation_epoch() == 0 && self.epochs.try_advance().is_some();
        if advanced {
            MemoryStats::inc(&self.stats.emergency_epoch_advances);
            MemoryStats::inc(&self.stats.epoch_advances);
        }
        let ripened = self.drain_graveyard();
        freed += ripened;
        smc_obs::trace::emit(smc_obs::Event::RecoveryStep {
            attempt: attempt as u64,
            freed_blocks: freed as u64,
            advanced,
        });
        if ripened > 0 {
            return;
        }
        // (3) Last rung: claw shard-cached spares back from every thread.
        // Only at the final attempt — recycled spares are the fast path's
        // whole point, so they are sacrificed only when the alternative is
        // conceding OutOfMemory.
        if attempt >= MAX_ALLOC_ATTEMPTS && self.alloc.trim(&self.stats) > 0 {
            return;
        }
        // (4) Capped backoff: concurrent removals/compactions may free blocks.
        crate::sync::backoff(attempt);
    }

    /// Returns a block handed out by [`allocate_block`](Self::allocate_block)
    /// (or the graveyard's epoch-delayed equivalent). The memory is parked
    /// on an allocation shard for recycling when the sharded path is on and
    /// the cache has room; otherwise it goes back to the OS and frees its
    /// budget reservation.
    ///
    /// Callers must guarantee no thread can still dereference into the
    /// block — either because it was never published or because its burial
    /// epoch passed (the graveyard handles the latter).
    pub fn free_block(&self, block: BlockRef) {
        MemoryStats::inc(&self.stats.blocks_freed);
        self.stats.blocks_live.fetch_sub(1, Ordering::Relaxed);
        self.release_block(block);
    }

    /// Routes a retired block's memory: shard cache, owner's remote return
    /// queue, or OS. Does not touch the handout gauges — callers do.
    fn release_block(&self, block: BlockRef) {
        let owner = block.header().owner_shard.load(Ordering::Relaxed);
        let base = unsafe { block.retire() };
        if owner == 0 {
            // Hand-allocated outside the runtime's budget (tests, fixtures):
            // never reserved, so nothing to unreserve or recycle.
            unsafe { raw_dealloc_block(base) };
            return;
        }
        let budget = self.budget_bytes.load(Ordering::Relaxed);
        let over_budget = budget != u64::MAX
            && self
                .alloc
                .budgeted_blocks()
                .saturating_mul(BLOCK_SIZE as u64)
                > budget;
        if self.alloc.is_sharded() && owner != u32::MAX && !over_budget {
            // Recycle. The freeing thread keeps blocks it owns; foreign
            // blocks go home via the owner's MPSC return queue.
            let target = (owner - 1) as usize;
            if self.alloc.shard_cached(target) < MAX_SHARD_CACHE {
                match self.epochs.thread_index() {
                    Ok(me) if me == target => {
                        self.alloc.push_local(target, base as u64);
                        return;
                    }
                    Ok(_) => {
                        MemoryStats::inc(&self.stats.remote_frees);
                        self.alloc.push_remote(target, base as u64);
                        return;
                    }
                    Err(_) => {} // registry exhausted: fall through to OS
                }
            }
        }
        // Legacy path, overshoot settlement, cache cap, or unregistered
        // freeing thread: return the memory and its reservation.
        unsafe { raw_dealloc_block(base) };
        self.alloc.unreserve(1);
    }

    /// Drains the calling thread's remote return queue into its local free
    /// list, returning the number of blocks reclaimed. Worker pools and
    /// server shards call this on their idle/maintenance ticks so remote
    /// frees do not sit in limbo until the owner's next allocation.
    pub fn alloc_maintenance(&self) -> u64 {
        match self.epochs.thread_index() {
            Ok(idx) => self.alloc.drain_remote(idx, &self.stats),
            Err(_) => 0,
        }
    }

    /// Pre-faults up to `n` fresh blocks into the calling thread's shard
    /// cache (subject to budget), so a worker's first allocations skip the
    /// slow path. Returns the number of blocks parked.
    pub fn prewarm_local_blocks(&self, n: u64) -> u64 {
        if !self.alloc.is_sharded() {
            return 0;
        }
        let Ok(idx) = self.epochs.thread_index() else {
            return 0;
        };
        let budget = self.budget_bytes.load(Ordering::Relaxed);
        let granted = self.alloc.reserve(budget, n.min(MAX_SHARD_CACHE));
        for _ in 0..granted {
            self.alloc.push_local(idx, raw_alloc_block() as u64);
        }
        granted
    }

    /// Point-in-time view of the allocation layer (shard caches, budget
    /// gauge, slab occupancy) for `HeapSnapshot` and `smc-top`.
    pub fn alloc_snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            sharded: self.alloc.is_sharded(),
            budgeted_blocks: self.alloc.budgeted_blocks(),
            cached_blocks: self.alloc.cached_blocks(),
            blocks_recycled: MemoryStats::get(&self.stats.blocks_recycled),
            remote_frees: MemoryStats::get(&self.stats.remote_frees),
            remote_frees_drained: MemoryStats::get(&self.stats.remote_frees_drained),
            slab_classes: self.slab.occupancy(),
        }
    }

    /// Allocates `len` bytes from the power-of-two size-class slabs
    /// (variable-size payloads: strings, varlen columns). Lengths above
    /// [`SLAB_MAX_CELL`] are [`MemError::ObjectTooLarge`]. Slab pages are
    /// budgeted block handouts acquired through the same ladder as
    /// [`allocate_block`](Self::allocate_block).
    ///
    /// The returned cell is *not* zeroed: slab payloads are gated by their
    /// owners (e.g. a varlen column writes before publishing a length), so
    /// recycled cells may hold stale bytes.
    pub fn alloc_varlen(&self, len: usize) -> Result<NonNull<u8>, MemError> {
        let class = crate::alloc::slab_class_for(len).ok_or(MemError::ObjectTooLarge {
            size: len,
            max: SLAB_MAX_CELL,
        })?;
        let mut st = self.slab.class(class);
        let addr = match st.take_cell() {
            Some(addr) => addr,
            None => {
                // Refill under the class lock (classes refill independently;
                // the block ladder never takes a class lock, so no cycle).
                let (base, _owner, _recycled) = self.acquire_raw()?;
                st.add_page(class, base);
                st.take_cell().expect("fresh page must yield a cell")
            }
        };
        MemoryStats::inc(&self.stats.slab_cells_allocated);
        Ok(NonNull::new(addr as *mut u8).expect("slab cells are never at address 0"))
    }

    /// Returns a cell obtained from [`alloc_varlen`](Self::alloc_varlen).
    ///
    /// # Safety
    /// `ptr` must have come from `alloc_varlen(len')` on this runtime with
    /// `len'` mapping to the same size class as `len`, must not be freed
    /// twice, and no live reference into the cell may remain.
    pub unsafe fn free_varlen(&self, ptr: NonNull<u8>, len: usize) {
        let class = crate::alloc::slab_class_for(len)
            .expect("free_varlen length must match an allocatable class");
        self.slab.class(class).put_cell(ptr.as_ptr() as usize);
        MemoryStats::inc(&self.stats.slab_cells_freed);
    }

    /// Current global epoch.
    pub fn global_epoch(&self) -> u64 {
        self.epochs.global_epoch()
    }

    /// Allocates a context identifier.
    pub(crate) fn next_context_id(&self) -> u64 {
        self.next_context_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The announced relocation epoch (0 if no compaction is pending).
    #[inline]
    pub fn next_relocation_epoch(&self) -> u64 {
        self.epochs.next_relocation_epoch()
    }

    /// True while the in-flight compaction is in its moving phase.
    #[inline]
    pub fn in_moving_phase(&self) -> bool {
        self.epochs.in_moving_phase()
    }

    pub(crate) fn set_relocation_epoch(&self, e: u64) {
        self.epochs.set_relocation_epoch(e);
    }

    pub(crate) fn set_moving_phase(&self, on: bool) {
        self.epochs.set_moving_phase(on);
    }

    /// Hands a block to the graveyard, to be returned to the allocator once
    /// the global epoch reaches `free_at` (ripe blocks recycle through the
    /// owner's shard cache, or the OS past the cache cap).
    pub fn bury_block(&self, block: BlockRef, free_at: u64) {
        self.graveyard.lock().push((block, free_at));
        self.reclaim_pending
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Hands a spill stub (raw `Box<SpillStub>` address, tag bit stripped)
    /// to the stub graveyard, to be freed once the global epoch reaches
    /// `free_at` — after which no pinned reader can still hold the tagged
    /// payload it came from.
    pub(crate) fn bury_stub(&self, stub_addr: usize, free_at: u64) {
        self.stub_graveyard.lock().push((stub_addr, free_at));
        self.reclaim_pending
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Allocates one block outside the budget gate and recovery ladder.
    ///
    /// Spill fault-in must allocate a destination block while the faulting
    /// thread may itself be pinned (a dereference faults in mid-read); a
    /// pinned thread can never ripen its own victim's burial epoch, so
    /// routing through the ladder could deadlock against the budget. The
    /// reservation is forced (transient overshoot, at most one block per
    /// concurrent faulter) and settles as buried spill victims drain: frees
    /// observed while over budget return to the OS instead of the cache.
    pub(crate) fn allocate_block_unbudgeted(
        &self,
        layout: &BlockLayout,
        type_id: u64,
        context_id: u64,
    ) -> Result<BlockRef, MemError> {
        self.alloc.force_reserve(1);
        let owner = match self.epochs.thread_index() {
            Ok(idx) => idx as u32 + 1,
            Err(_) => u32::MAX,
        };
        let base = raw_alloc_block();
        self.note_handout(0);
        Ok(unsafe { BlockRef::init_at(base, layout, type_id, context_id, owner) })
    }

    /// Opportunistically frees graveyard blocks whose epoch has passed.
    /// Called from allocation slow paths; also usable directly. The common
    /// nothing-pending case is one uninstrumented atomic load — no locks.
    pub fn drain_graveyard(&self) -> usize {
        if self
            .reclaim_pending
            .load(std::sync::atomic::Ordering::Relaxed)
            == 0
        {
            return 0;
        }
        let now = self.global_epoch();
        let mut yard = self.graveyard.lock();
        let before = yard.len();
        yard.retain(|(block, free_at)| {
            if *free_at <= now {
                self.free_block(*block);
                false
            } else {
                true
            }
        });
        let freed = before - yard.len();
        drop(yard);
        // Ripe spill stubs ride the same epoch discipline but are not blocks:
        // they do not count toward the returned total or the block gauges.
        let mut stubs = self.stub_graveyard.lock();
        let sbefore = stubs.len();
        stubs.retain(|(addr, free_at)| {
            if *free_at <= now {
                drop(unsafe { Box::from_raw(*addr as *mut crate::spill::SpillStub) });
                false
            } else {
                true
            }
        });
        let sfreed = sbefore - stubs.len();
        drop(stubs);
        if freed + sfreed > 0 {
            self.reclaim_pending.fetch_sub(
                (freed + sfreed) as u64,
                std::sync::atomic::Ordering::Relaxed,
            );
        }
        freed
    }

    /// Number of blocks awaiting burial.
    pub fn graveyard_len(&self) -> usize {
        self.graveyard.lock().len()
    }

    /// Advances epochs until every graveyard block is freed. Used by tests
    /// and shutdown paths; must not be called while this thread holds a
    /// [`Guard`] (the epoch could then never advance far enough).
    pub fn drain_graveyard_blocking(&self) {
        while self.graveyard_len() > 0 {
            if self.drain_graveyard() == 0 {
                let _ = self.epochs.try_advance();
                crate::sync::cpu_relax();
            }
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // No Arc<Runtime> clones remain, so no guard obtained from this
        // runtime can still be alive; every graveyard block is quiescent.
        let mut yard = self.graveyard.lock();
        for (block, _) in yard.drain(..) {
            unsafe { block.deallocate() };
        }
        drop(yard);
        let mut stubs = self.stub_graveyard.lock();
        for (addr, _) in stubs.drain(..) {
            drop(unsafe { Box::from_raw(addr as *mut crate::spill::SpillStub) });
        }
        drop(stubs);
        // `alloc` (shard caches) and `slab` (pages) free their own memory
        // when their fields drop after this body.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{type_id_of, BlockLayout};

    #[test]
    fn pin_and_epoch_pass_through() {
        let rt = Runtime::new();
        assert_eq!(rt.global_epoch(), 0);
        let g = rt.pin();
        assert_eq!(g.epoch(), 0);
        drop(g);
        assert!(rt.epochs.try_advance().is_some());
        assert_eq!(rt.global_epoch(), 1);
    }

    #[test]
    fn graveyard_respects_epochs() {
        let rt = Runtime::new();
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        let b = BlockRef::allocate(&layout, type_id_of::<u64>(), 1).unwrap();
        MemoryStats::inc(&rt.stats.blocks_live);
        rt.bury_block(b, 2);
        assert_eq!(rt.drain_graveyard(), 0, "epoch 0 < 2: must not free");
        rt.epochs.try_advance();
        rt.epochs.try_advance();
        assert_eq!(rt.drain_graveyard(), 1);
        assert_eq!(rt.graveyard_len(), 0);
        assert_eq!(MemoryStats::get(&rt.stats.blocks_freed), 1);
    }

    #[test]
    fn drain_blocking_advances_epochs() {
        let rt = Runtime::new();
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        let b = BlockRef::allocate(&layout, type_id_of::<u64>(), 1).unwrap();
        MemoryStats::inc(&rt.stats.blocks_live);
        rt.bury_block(b, 5);
        rt.drain_graveyard_blocking();
        assert!(rt.global_epoch() >= 5);
        assert_eq!(rt.graveyard_len(), 0);
    }

    #[test]
    fn runtime_drop_frees_graveyard() {
        let rt = Runtime::new();
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        let b = BlockRef::allocate(&layout, type_id_of::<u64>(), 1).unwrap();
        rt.bury_block(b, u64::MAX); // would never free by epoch
        drop(rt); // must free anyway, without leaking
    }

    #[test]
    fn relocation_flags_default_off() {
        let rt = Runtime::new();
        assert_eq!(rt.next_relocation_epoch(), 0);
        assert!(!rt.in_moving_phase());
    }

    #[test]
    fn context_ids_are_unique() {
        let rt = Runtime::new();
        let a = rt.next_context_id();
        let b = rt.next_context_id();
        assert_ne!(a, b);
    }

    #[test]
    fn budget_exhaustion_surfaces_out_of_memory() {
        // A two-block budget: the third allocation must fail with an error,
        // not a panic, after exhausting the recovery ladder. The batched
        // grant parks the budget's second block in this thread's shard
        // cache, so the second allocation is a recycling fast-path hit.
        let rt = Runtime::with_budget(Some(2 * BLOCK_SIZE as u64));
        assert_eq!(rt.memory_budget(), Some(2 * BLOCK_SIZE as u64));
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        let a = rt.allocate_block(&layout, 1, 1).unwrap();
        assert_eq!(MemoryStats::get(&rt.stats.alloc_batch_refills), 1);
        let b = rt.allocate_block(&layout, 1, 1).unwrap();
        assert_eq!(MemoryStats::get(&rt.stats.blocks_recycled), 1);
        let third = rt.allocate_block(&layout, 1, 1);
        assert!(matches!(third, Err(MemError::OutOfMemory)));
        assert_eq!(
            MemoryStats::get(&rt.stats.alloc_retries),
            u64::from(MAX_ALLOC_ATTEMPTS)
        );
        assert_eq!(
            MemoryStats::get(&rt.stats.blocks_live),
            2,
            "failed attempt must not leak budget"
        );
        assert_eq!(rt.alloc.budgeted_blocks(), 2);
        // Raising the budget unblocks allocation.
        rt.set_memory_budget(Some(3 * BLOCK_SIZE as u64));
        let c = rt.allocate_block(&layout, 1, 1).unwrap();
        for blk in [a, b, c] {
            rt.bury_block(blk, 0);
        }
        rt.drain_graveyard();
        rt.verify().unwrap();
    }

    #[test]
    fn recovery_ladder_frees_graveyard_and_succeeds() {
        let rt = Runtime::with_budget(Some(BLOCK_SIZE as u64));
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        let a = rt.allocate_block(&layout, 1, 1).unwrap();
        // The only budgeted block sits in the graveyard two epochs out; the
        // ladder must advance epochs, drain it into the shard cache, and
        // then recycle it.
        rt.bury_block(a, rt.global_epoch() + 2);
        let b = rt
            .allocate_block(&layout, 1, 1)
            .expect("recovery ladder should free the graveyard");
        assert_eq!(MemoryStats::get(&rt.stats.oom_recoveries), 1);
        assert_eq!(MemoryStats::get(&rt.stats.blocks_recycled), 1);
        assert!(MemoryStats::get(&rt.stats.emergency_epoch_advances) >= 1);
        assert!(MemoryStats::get(&rt.stats.alloc_retries) >= 1);
        rt.bury_block(b, 0);
        rt.drain_graveyard();
    }

    #[test]
    fn final_ladder_rung_trims_foreign_shard_caches() {
        // Budget of one block, parked in another shard's cache: only the
        // trim rung can claw it back for this thread.
        let rt = Runtime::with_budget(Some(BLOCK_SIZE as u64));
        let me = rt.epochs.thread_index().unwrap();
        let foreign = (me + 1) % crate::epoch::MAX_THREADS;
        assert_eq!(rt.alloc.reserve(BLOCK_SIZE as u64, 1), 1);
        rt.alloc.push_local(foreign, raw_alloc_block() as u64);
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        let b = rt
            .allocate_block(&layout, 1, 1)
            .expect("trim rung must reclaim the foreign cache");
        assert_eq!(MemoryStats::get(&rt.stats.blocks_trimmed), 1);
        rt.free_block(b);
        rt.verify().unwrap();
    }

    #[test]
    fn legacy_shared_path_skips_recycling() {
        let rt = Runtime::new();
        assert!(rt.sharded_alloc());
        rt.set_sharded_alloc(false);
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        let a = rt.allocate_block(&layout, 1, 1).unwrap();
        rt.free_block(a);
        assert_eq!(rt.alloc.cached_blocks(), 0, "legacy frees go to the OS");
        assert_eq!(rt.alloc.budgeted_blocks(), 0);
        assert_eq!(MemoryStats::get(&rt.stats.blocks_recycled), 0);
        assert_eq!(MemoryStats::get(&rt.stats.alloc_batch_refills), 0);
        rt.verify().unwrap();
    }

    #[test]
    fn prewarm_fills_the_local_cache() {
        let rt = Runtime::new();
        assert_eq!(rt.prewarm_local_blocks(3), 3);
        assert_eq!(rt.alloc.cached_blocks(), 3);
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        let a = rt.allocate_block(&layout, 1, 1).unwrap();
        assert_eq!(
            MemoryStats::get(&rt.stats.blocks_recycled),
            1,
            "prewarmed blocks serve the fast path"
        );
        rt.free_block(a);
        rt.verify().unwrap();
    }

    #[test]
    fn varlen_cells_recycle_within_their_class() {
        let rt = Runtime::new();
        let p = rt.alloc_varlen(100).unwrap();
        let q = rt.alloc_varlen(100).unwrap();
        assert_ne!(p, q);
        unsafe { rt.free_varlen(p, 100) };
        let r = rt.alloc_varlen(128).unwrap(); // same 128-byte class
        assert_eq!(r, p, "freed cell is reused LIFO");
        let snap = rt.alloc_snapshot();
        assert_eq!(snap.slab_classes_used(), 1);
        let class = &snap.slab_classes[2]; // 32 << 2 == 128
        assert_eq!(class.cell_size, 128);
        assert_eq!(class.pages, 1);
        assert_eq!(class.cells_live, 2);
        assert_eq!(class.cells_allocated_total, 3);
        assert!(matches!(
            rt.alloc_varlen(SLAB_MAX_CELL + 1),
            Err(MemError::ObjectTooLarge { size, max })
                if size == SLAB_MAX_CELL + 1 && max == SLAB_MAX_CELL
        ));
        unsafe {
            rt.free_varlen(q, 100);
            rt.free_varlen(r, 128);
        }
        rt.verify().unwrap();
    }

    #[test]
    fn varlen_respects_the_block_budget() {
        let rt = Runtime::with_budget(Some(BLOCK_SIZE as u64));
        let p = rt.alloc_varlen(64).unwrap(); // first slab page takes the budget
        assert!(matches!(rt.alloc_varlen(4096), Err(MemError::OutOfMemory)));
        unsafe { rt.free_varlen(p, 64) };
        rt.verify().unwrap();
    }

    #[test]
    fn injected_block_alloc_fault_is_immediate_oom() {
        let rt = Runtime::new();
        rt.faults().enable(21);
        rt.faults().set_rate(
            crate::fault::FaultSite::BlockAlloc,
            crate::fault::RATE_DENOMINATOR,
        );
        let layout = BlockLayout::rows_of::<u64>().unwrap();
        assert!(matches!(
            rt.allocate_block(&layout, 1, 1),
            Err(MemError::OutOfMemory)
        ));
        assert_eq!(
            MemoryStats::get(&rt.stats.alloc_retries),
            0,
            "injected hard failures bypass the recovery ladder"
        );
        assert_eq!(MemoryStats::get(&rt.stats.faults_injected), 1);
        rt.faults().disable();
        let b = rt.allocate_block(&layout, 1, 1).unwrap();
        rt.bury_block(b, 0);
        rt.drain_graveyard();
    }

    #[test]
    fn unbudgeted_runtime_never_reports_budget() {
        let rt = Runtime::new();
        assert_eq!(rt.memory_budget(), None);
        rt.set_memory_budget(Some(1));
        assert_eq!(rt.memory_budget(), Some(1));
        rt.set_memory_budget(None);
        assert_eq!(rt.memory_budget(), None);
    }
}
