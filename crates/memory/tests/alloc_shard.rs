//! Integration tests for the sharded block allocator: concurrent alloc/free
//! churn with remote frees crossing shard owners, budget breaches on the
//! batched slow path, and exact post-quiesce reconciliation of free-list and
//! slab accounting through `Runtime::verify`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Barrier};

use smc_memory::block::type_id_of;
use smc_memory::{BlockLayout, MemError, MemoryStats, Runtime, BLOCK_SIZE};

const THREADS: usize = 4;

fn layout() -> BlockLayout {
    BlockLayout::rows_of::<u64>().unwrap()
}

/// Four threads in a ring: each allocates blocks and hands them to its
/// neighbour, which frees them. Every free is a *remote* free (the freeing
/// thread never owns the block), exercising the MPSC return queues from all
/// sides at once. Afterwards every block must come home: zero live handouts,
/// all budget either parked in shard caches or returned to the OS, and
/// `Runtime::verify` reconciling exactly.
#[test]
fn remote_free_ring_reconciles_exactly() {
    let rt = Runtime::new();
    let iters = 200usize;
    let barrier = Arc::new(Barrier::new(THREADS));
    let (txs, rxs): (Vec<_>, Vec<_>) = (0..THREADS).map(|_| mpsc::channel()).unzip();
    std::thread::scope(|s| {
        let mut rxs = rxs.into_iter();
        for i in 0..THREADS {
            let tx = txs[(i + 1) % THREADS].clone();
            let rx = rxs.next().unwrap();
            let rt = rt.clone();
            let barrier = barrier.clone();
            s.spawn(move || {
                barrier.wait();
                for _ in 0..iters {
                    let b = rt
                        .allocate_block(&layout(), type_id_of::<u64>(), i as u64 + 1)
                        .unwrap();
                    tx.send(b).unwrap();
                }
                drop(tx);
                // Block until the left neighbour's sender closes: frees every
                // block it ever produced.
                while let Ok(other) = rx.recv() {
                    rt.free_block(other);
                }
            });
        }
        drop(txs);
    });
    assert_eq!(MemoryStats::get(&rt.stats.blocks_live), 0);
    assert_eq!(
        MemoryStats::get(&rt.stats.blocks_allocated),
        (THREADS * iters) as u64
    );
    assert_eq!(
        MemoryStats::get(&rt.stats.blocks_freed),
        (THREADS * iters) as u64
    );
    rt.verify()
        .unwrap_or_else(|v| panic!("post-quiesce verify: {v:?}"));
    let snap = rt.alloc_snapshot();
    assert_eq!(snap.budgeted_blocks, snap.cached_blocks);
    assert!(
        snap.blocks_recycled > 0,
        "churn at this rate must hit the recycling fast path"
    );
    assert!(
        MemoryStats::get(&rt.stats.remote_frees) > 0,
        "ring frees must cross owners"
    );
}

/// A breached budget on the batched slow path must surface
/// `MemError::OutOfMemory` from every contender — never a panic — and must
/// not corrupt the books: after the survivors free their blocks, verify
/// reconciles and the budget is respected again.
#[test]
fn budget_breach_under_contention_is_an_error_never_a_panic() {
    let budget_blocks = 3u64;
    let rt = Runtime::with_budget(Some(budget_blocks * BLOCK_SIZE as u64));
    let barrier = Arc::new(Barrier::new(THREADS));
    let oom = AtomicU64::new(0);
    let won = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for i in 0..THREADS {
            let rt = rt.clone();
            let barrier = barrier.clone();
            let oom = &oom;
            let won = &won;
            s.spawn(move || {
                barrier.wait();
                for _ in 0..8 {
                    match rt.allocate_block(&layout(), type_id_of::<u64>(), i as u64 + 1) {
                        Ok(b) => won.lock().unwrap().push(b),
                        Err(MemError::OutOfMemory) => {
                            oom.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected error: {e:?}"),
                    }
                }
            });
        }
    });
    let winners = won.into_inner().unwrap();
    // No frees happen during the race, so the budget hard-caps the winners;
    // the first reserve always grants at least one.
    assert!(
        !winners.is_empty() && winners.len() as u64 <= budget_blocks,
        "won {} of a {budget_blocks}-block budget",
        winners.len()
    );
    assert_eq!(
        MemoryStats::get(&rt.stats.blocks_live),
        winners.len() as u64
    );
    assert!(oom.load(Ordering::Relaxed) > 0);
    assert!(
        rt.alloc_snapshot().budgeted_blocks * (BLOCK_SIZE as u64)
            <= budget_blocks * BLOCK_SIZE as u64,
        "contended slow path never over-reserves"
    );
    for b in winners {
        rt.free_block(b);
    }
    rt.verify()
        .unwrap_or_else(|v| panic!("post-quiesce verify: {v:?}"));
    // The freed budget is usable again (possibly via the trim rung when the
    // frees parked on other threads' shards).
    let again = rt
        .allocate_block(&layout(), type_id_of::<u64>(), 9)
        .expect("freed budget must be allocatable");
    rt.free_block(again);
    rt.verify().unwrap();
}

/// Slab cells churned from several threads (each class has its own lock;
/// cells recycle within a class) reconcile exactly: live + free == capacity
/// per class, and lifetime counters balance.
#[test]
fn slab_churn_across_threads_reconciles() {
    let rt = Runtime::new();
    let barrier = Arc::new(Barrier::new(THREADS));
    std::thread::scope(|s| {
        for i in 0..THREADS {
            let rt = rt.clone();
            let barrier = barrier.clone();
            s.spawn(move || {
                barrier.wait();
                let sizes = [48usize, 200, 1500, 4096];
                let mut held = Vec::new();
                for k in 0..200 {
                    let len = sizes[(i + k) % sizes.len()];
                    let p = rt.alloc_varlen(len).expect("unbounded budget");
                    unsafe { p.as_ptr().write_bytes(0xAB, len) };
                    held.push((p, len));
                    if held.len() > 8 {
                        let (p, len) = held.remove(0);
                        unsafe { rt.free_varlen(p, len) };
                    }
                }
                for (p, len) in held {
                    unsafe { rt.free_varlen(p, len) };
                }
            });
        }
    });
    rt.verify()
        .unwrap_or_else(|v| panic!("post-quiesce verify: {v:?}"));
    let snap = rt.alloc_snapshot();
    assert_eq!(snap.slab_classes_used(), 4, "four distinct classes churned");
    for class in &snap.slab_classes {
        assert_eq!(class.cells_live, 0, "all cells returned");
        assert_eq!(class.cells_free, class.cells_capacity);
    }
    assert_eq!(
        MemoryStats::get(&rt.stats.slab_cells_allocated),
        MemoryStats::get(&rt.stats.slab_cells_freed)
    );
    assert_eq!(
        MemoryStats::get(&rt.stats.slab_cells_allocated),
        (THREADS * 200) as u64
    );
}
