//! The observatory's consistency claim, under fire: [`HeapSnapshot`]s are
//! captured concurrently with decimation-driven compaction (including runs
//! where the `Relocation` failpoint interrupts passes mid-group), every
//! snapshot must satisfy the watermark invariant and basic accounting
//! bounds, and once the heap quiesces the snapshot totals must reconcile
//! exactly with the structural validator ([`Smc::verify`]).
//!
//! This is the integration counterpart of the `snapshot_vs_advance`
//! `smc-check` scenario: the scenario proves the pin/advance interlock on
//! the model checker's schedules; this test exercises the full block walk
//! against a real compacting heap.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use smc::{ContextConfig, Ref, Smc, Tabular};
use smc_memory::fault::{FaultSite, RATE_DENOMINATOR};
use smc_memory::{HeapSnapshot, Runtime};
use smc_util::Pcg32;

#[derive(Clone, Copy)]
#[allow(dead_code)] // stored off-heap, never read back by the test
struct Row {
    key: u64,
    payload: [u64; 15],
}
unsafe impl Tabular for Row {}

/// Removes roughly `fraction` of `refs` (seeded), modeled on the bench
/// workloads' `smc_decimate`: strewn removals leave limbo holes in every
/// block, which is what makes the subsequent compaction move objects.
fn decimate(c: &Smc<Row>, refs: &mut Vec<Ref<Row>>, rng: &mut Pcg32, fraction: f64) -> usize {
    let cutoff = (fraction * 1024.0) as u32;
    let mut removed = 0;
    refs.retain(|r| {
        if rng.gen_range(0u32..1024) < cutoff && c.remove(*r) {
            removed += 1;
            false
        } else {
            true
        }
    });
    removed
}

/// Invariants every mid-flight snapshot must satisfy, writers or not.
fn check_snapshot(snap: &HeapSnapshot, max_live: u64) {
    assert!(
        snap.watermark.consistent(),
        "pinned snapshot saw the global epoch advance past pinned+1: {:?}",
        snap.watermark
    );
    assert_eq!(snap.collections.len(), 1);
    let c = &snap.collections[0];
    for b in &c.blocks {
        assert!(
            b.valid <= b.capacity,
            "block {}: valid > capacity",
            b.block_id
        );
        assert!(
            b.limbo <= b.capacity,
            "block {}: limbo > capacity",
            b.block_id
        );
        assert!(
            b.alloc_cursor <= b.capacity,
            "block {}: cursor > capacity",
            b.block_id
        );
    }
    // The walk tolerates concurrent mutation, so per-counter sums are racy
    // — but they can never exceed the high-water mark of objects that ever
    // existed, and capacity sums are exact.
    assert!(
        c.valid_slots <= max_live,
        "snapshot counted phantom objects"
    );
    assert!(c.capacity_slots >= c.valid_slots);
}

#[test]
fn snapshots_race_compaction_and_reconcile_with_verify() {
    const OBJECTS: usize = 30_000;
    let rt = Runtime::new();
    // Compaction-eager: in-place reclamation off, high occupancy cutoff, so
    // decimation leaves every block below the cutoff and compaction must
    // relocate the survivors.
    let config = ContextConfig {
        reclamation_threshold: 1.1,
        compaction_occupancy: 0.85,
        ..ContextConfig::default()
    };
    let c: Arc<Smc<Row>> = Arc::new(Smc::with_config(&rt, config));
    let mut rng = Pcg32::seed_from_u64(0x0b5e_7a70);
    let mut refs: Vec<Ref<Row>> = (0..OBJECTS)
        .map(|i| {
            c.add(Row {
                key: i as u64,
                payload: [i as u64; 15],
            })
        })
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let snapshotter = {
        let c = c.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut taken = 0u64;
            let mut saw_groups = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = c.heap_snapshot();
                check_snapshot(&snap, OBJECTS as u64);
                taken += 1;
                if snap.collections[0].groups > 0 {
                    saw_groups += 1;
                }
            }
            (taken, saw_groups)
        })
    };

    // Round 1: clean decimation + compaction while snapshots race.
    decimate(&c, &mut refs, &mut rng, 0.5);
    let report = c.compact();
    assert!(!report.interrupted, "no faults armed yet");
    c.release_retired();

    // Round 2: decimate again and compact with the Relocation failpoint
    // armed — interrupted passes leave groups mid-flight, exactly the state
    // the snapshot walk must tolerate (group sources and dest walked
    // explicitly).
    decimate(&c, &mut refs, &mut rng, 0.5);
    rt.faults()
        .set_rate(FaultSite::Relocation, RATE_DENOMINATOR / 8);
    rt.faults().enable(0x0b5e_7a70);
    for _ in 0..4 {
        c.compact();
        c.release_retired();
    }
    rt.faults().disable();

    // Every interrupted pass must be retriable to completion with faults
    // off; keep snapshotting throughout.
    let retry = c.compact();
    assert!(!retry.interrupted, "compaction interrupted without faults");
    c.release_retired();

    stop.store(true, Ordering::Relaxed);
    let (taken, saw_groups) = snapshotter.join().expect("snapshot thread panicked");
    assert!(taken > 0, "snapshot thread never ran");
    println!("snapshots taken: {taken} (of which {saw_groups} saw in-flight groups)");

    // Quiesce fully, then the snapshot must agree with the validator
    // exactly: same blocks, same valid and limbo totals, no groups.
    rt.drain_graveyard_blocking();
    let verify = c
        .verify()
        .unwrap_or_else(|v| panic!("validator failed after quiescence:\n  {}", v.join("\n  ")));
    let snap = c.heap_snapshot();
    let col = &snap.collections[0];
    assert_eq!(col.valid_slots, verify.valid_slots, "valid totals diverge");
    assert_eq!(col.limbo_slots, verify.limbo_slots, "limbo totals diverge");
    assert_eq!(col.block_count(), verify.blocks, "block counts diverge");
    assert_eq!(col.groups, verify.groups, "groups after quiescence");
    assert_eq!(col.valid_slots, refs.len() as u64, "model diverged");
    assert!(snap.watermark.consistent());
    // Compaction actually relocated objects: slot reuse shows up as
    // incarnation churn in the snapshot.
    assert!(
        col.incarnation_churn > 0,
        "compaction left no incarnation churn"
    );
}
