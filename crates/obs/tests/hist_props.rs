//! Property tests for the log2 histogram: the documented quantile-error
//! bound (≤ 1/16 = 6.25 %) must hold under adversarial streams, and `merge`
//! must form a commutative monoid (associative, commutative, empty identity).
//!
//! The reference ("true") quantile is computed on a sorted copy of the raw
//! samples with the same rank convention the histogram uses
//! (`ceil(p/100 * n)`, min rank 1), so the only error the assertions allow is
//! bucketing error.

use smc_obs::hist::{Histogram, NUM_BUCKETS, SUB_BUCKETS};
use smc_util::rng::Pcg32;

const PERCENTILES: &[f64] = &[
    0.1, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0,
];

/// Exact quantile of `samples` at percentile `p`, using the histogram's rank
/// convention.
fn true_quantile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let target = ((p / 100.0 * sorted.len() as f64).ceil() as usize).max(1);
    sorted[target.min(sorted.len()) - 1]
}

/// Feeds `samples` to a fresh histogram and checks every percentile in
/// [`PERCENTILES`] against the exact quantile: the estimate must never be
/// below the true value and never more than `true/SUB_BUCKETS` above it.
fn assert_quantile_bound(samples: &[u64], label: &str) {
    let h = Histogram::new();
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    for &v in samples {
        h.record(v);
    }
    assert_eq!(h.count(), samples.len() as u64, "{label}: lost samples");
    assert_eq!(h.max(), *sorted.last().unwrap(), "{label}: max");
    assert_eq!(h.min(), sorted[0], "{label}: min");
    for &p in PERCENTILES {
        let truth = true_quantile(&sorted, p);
        let est = h.percentile(p);
        assert!(
            est >= truth,
            "{label}: p{p} underestimates: est {est} < true {truth}"
        );
        // Bucket width ≤ bucket_low/SUB_BUCKETS for v ≥ 2*SUB_BUCKETS, and
        // buckets are exact below that, so the estimate (the bucket's upper
        // bound, clamped to the observed max) exceeds the truth by at most
        // truth/SUB_BUCKETS.
        assert!(
            est <= truth.saturating_add(truth / SUB_BUCKETS as u64),
            "{label}: p{p} over-bound: est {est} > true {truth} + {}",
            truth / SUB_BUCKETS as u64
        );
    }
}

#[test]
fn quantile_bound_on_bucket_boundaries() {
    // The nastiest inputs for a bucketing scheme are the bucket edges
    // themselves: low, low±1, high, high+1 for a sweep of buckets across the
    // whole dynamic range.
    let mut samples = Vec::new();
    let mut i = 1;
    while i < NUM_BUCKETS - 1 {
        let low = Histogram::bucket_low(i);
        let high = Histogram::bucket_high(i);
        samples.extend_from_slice(&[
            low.saturating_sub(1).max(1),
            low,
            low.saturating_add(1),
            // u64::MAX is the histogram's empty-min sentinel; stay below it.
            high.min(u64::MAX - 1),
            high.saturating_add(1).min(u64::MAX - 1),
        ]);
        i += 7; // stride keeps the stream adversarial but the test fast
    }
    assert_quantile_bound(&samples, "bucket boundaries");
}

#[test]
fn quantile_bound_on_powers_of_two() {
    // Powers of two sit exactly on sub-bucket rollovers.
    let mut samples = Vec::new();
    for shift in 0..63u32 {
        let v = 1u64 << shift;
        samples.extend_from_slice(&[v.saturating_sub(1).max(1), v, v + 1]);
    }
    assert_quantile_bound(&samples, "powers of two");
}

#[test]
fn quantile_bound_on_heavy_duplicates() {
    // Many duplicates concentrate mass in single buckets, stressing the rank
    // arithmetic at every percentile.
    let mut samples = vec![1_000_000u64; 500];
    samples.extend(vec![17u64; 499]);
    samples.push(u64::MAX / 2);
    assert_quantile_bound(&samples, "heavy duplicates");
}

#[test]
fn quantile_bound_on_seeded_random_streams() {
    for seed in [1u64, 7, 42, 0xDEAD, 0xC0FFEE] {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut samples = Vec::with_capacity(4096);
        for _ in 0..4096 {
            // Mix magnitudes: draw an exponent, then a mantissa, so every
            // power-of-two decade is exercised rather than only the huge ones
            // a uniform u64 draw would hit.
            let shift = rng.gen_range(0..56u32);
            let v = (rng.next_u64() >> 8).max(1) >> (55 - shift.min(55));
            samples.push(v.max(1));
        }
        assert_quantile_bound(&samples, &format!("random seed {seed}"));
    }
}

#[test]
fn quantile_bound_on_single_sample_streams() {
    // u64::MAX itself is excluded: it doubles as the histogram's empty-min
    // sentinel (values are nanoseconds by convention, so it is unreachable).
    for v in [1u64, 15, 16, 31, 32, 33, 1_000_003, u64::MAX - 1] {
        assert_quantile_bound(&[v], &format!("single sample {v}"));
    }
}

/// Structural equality of two histograms: identical summaries and identical
/// percentile sweeps.
fn assert_same(a: &Histogram, b: &Histogram, label: &str) {
    assert_eq!(a.summary(), b.summary(), "{label}: summaries differ");
    for &p in PERCENTILES {
        assert_eq!(a.percentile(p), b.percentile(p), "{label}: p{p} differs");
    }
}

/// Builds a histogram from a sample stream.
fn hist_of(samples: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Three deterministic, differently-shaped streams for the algebra tests.
fn three_streams() -> [Vec<u64>; 3] {
    let mut rng = Pcg32::seed_from_u64(99);
    let a: Vec<u64> = (0..500).map(|_| rng.gen_range(1..1_000u64)).collect();
    let b: Vec<u64> = (0..300)
        .map(|_| rng.gen_range(1_000..5_000_000u64))
        .collect();
    let c: Vec<u64> = (0..200).map(|i| 1u64 << (i % 40)).collect();
    [a, b, c]
}

#[test]
fn merge_is_associative() {
    let [a, b, c] = three_streams();
    // (a ⊕ b) ⊕ c
    let left = hist_of(&a);
    let ab = hist_of(&b);
    left.merge(&ab);
    left.merge(&hist_of(&c));
    // a ⊕ (b ⊕ c)
    let bc = hist_of(&b);
    bc.merge(&hist_of(&c));
    let right = hist_of(&a);
    right.merge(&bc);
    assert_same(&left, &right, "associativity");
    // Both equal the histogram of the concatenated stream.
    let mut all = a;
    all.extend(b);
    all.extend(c);
    assert_same(&left, &hist_of(&all), "merge vs concat");
}

#[test]
fn merge_is_commutative() {
    let [a, b, _] = three_streams();
    let ab = hist_of(&a);
    ab.merge(&hist_of(&b));
    let ba = hist_of(&b);
    ba.merge(&hist_of(&a));
    assert_same(&ab, &ba, "commutativity");
}

#[test]
fn empty_histogram_is_merge_identity() {
    let [a, _, _] = three_streams();
    let left = hist_of(&a);
    left.merge(&Histogram::new());
    assert_same(&left, &hist_of(&a), "right identity");
    let right = Histogram::new();
    right.merge(&hist_of(&a));
    assert_same(&right, &hist_of(&a), "left identity");
    // Merging two empties stays empty (min must not absorb the u64::MAX
    // sentinel into a bogus observed minimum).
    let e = Histogram::new();
    e.merge(&Histogram::new());
    assert_eq!(e.summary(), Default::default(), "empty ⊕ empty");
}

#[test]
fn merged_quantiles_keep_the_error_bound() {
    // The 6.25 % bound must survive merging: merge is bucket-wise exact, so
    // a merged histogram behaves like one built from the concatenated stream.
    let [a, b, c] = three_streams();
    let h = hist_of(&a);
    h.merge(&hist_of(&b));
    h.merge(&hist_of(&c));
    let mut all = a;
    all.extend(b);
    all.extend(c);
    all.sort_unstable();
    for &p in PERCENTILES {
        let truth = true_quantile(&all, p);
        let est = h.percentile(p);
        assert!(est >= truth, "p{p}: est {est} < true {truth}");
        assert!(
            est <= truth + truth / SUB_BUCKETS as u64,
            "p{p}: est {est} over bound (true {truth})"
        );
    }
}
