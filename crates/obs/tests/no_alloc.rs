//! The disabled-tracer fast path must emit nothing and allocate nothing.
//!
//! This is a separate integration-test binary so its counting global
//! allocator and its reliance on the tracer staying disabled can't race
//! with the unit tests that toggle tracing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use smc_obs::trace::{self, Event, Label};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
/// Thread whose allocations are counted; 0 = everyone. The libtest harness
/// keeps its own threads alive (stdout capture, timers) and they allocate
/// at unpredictable points — counting them made this test flaky.
static COUNTED_THREAD: AtomicU64 = AtomicU64::new(0);

fn thread_id() -> u64 {
    // Stable per-thread integer without allocating: the address of a
    // thread-local is unique per live thread.
    thread_local! { static MARKER: u8 = const { 0 }; }
    MARKER.with(|m| m as *const u8 as u64)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let counted = COUNTED_THREAD.load(Ordering::Relaxed);
        if counted == 0 || counted == thread_id() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_emit_allocates_nothing_and_records_nothing() {
    assert!(!trace::is_enabled(), "tracer must start disabled");

    // Warm anything lazily initialised outside the measured window, then
    // restrict counting to this thread (see `COUNTED_THREAD`).
    trace::emit(Event::EpochAdvance { epoch: 0 });
    COUNTED_THREAD.store(thread_id(), Ordering::Relaxed);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        trace::emit(Event::MorselDispatch {
            worker: 1,
            morsel: i,
        });
        trace::emit(Event::FailpointTrip {
            site: Label::new("block-alloc"),
        });
        trace::emit(Event::GcPauseEnd {
            major: true,
            nanos: i,
            traced: i,
            swept: i,
        });
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled emit must not allocate (saw {} allocations)",
        after - before
    );

    // And nothing was recorded: the snapshot contains no events at all,
    // because this process never enabled tracing.
    assert!(
        trace::snapshot().is_empty(),
        "disabled emit must not record events"
    );
    assert_eq!(trace::dropped(), 0);
}
