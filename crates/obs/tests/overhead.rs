//! Overhead contract: a disabled `trace::emit` costs ≤ 2 ns/op.
//!
//! The hard assertion only fires in release builds (CI runs
//! `cargo test --release -p smc-obs --test overhead`); debug builds just
//! print the measurement, since unoptimised code misses the budget by
//! design.

use std::hint::black_box;
use std::time::Instant;

use smc_obs::trace::{self, Event};

const ITERS: u64 = 20_000_000;
const BUDGET_NANOS_PER_OP: f64 = 2.0;

fn measure() -> f64 {
    let start = Instant::now();
    for i in 0..ITERS {
        trace::emit(black_box(Event::MorselDispatch {
            worker: 0,
            morsel: i,
        }));
    }
    start.elapsed().as_nanos() as f64 / ITERS as f64
}

#[test]
fn disabled_emit_is_at_most_two_nanos() {
    assert!(!trace::is_enabled(), "tracer must start disabled");

    // Warm-up, then best-of-3 to shake scheduler noise.
    let _ = measure();
    let best = (0..3).map(|_| measure()).fold(f64::INFINITY, f64::min);
    println!("disabled emit: {best:.3} ns/op (budget {BUDGET_NANOS_PER_OP} ns)");

    if cfg!(debug_assertions) {
        eprintln!("debug build: skipping hard overhead assertion");
        return;
    }
    assert!(
        best <= BUDGET_NANOS_PER_OP,
        "disabled emit overhead {best:.3} ns/op exceeds {BUDGET_NANOS_PER_OP} ns budget"
    );
}
