//! Always-on flight recorder: a fixed-budget global ring of the most
//! recent trace events, dumped on demand for crash forensics.
//!
//! The per-thread rings ([`crate::trace`]) are an *export* path: they are
//! enabled for a run, drained once, and written out. The flight recorder is
//! a *forensic* path: once [`enable`]d it taps every [`crate::trace::emit`] into
//! one process-global ring of [`FLIGHT_CAPACITY`] slots allocated exactly
//! once — zero steady-state allocation, oldest records overwritten — and
//! [`dump`] writes the surviving window as a Chrome trace (plus a
//! `flightTrigger` top-level field) to the path named by the
//! **`SMC_FLIGHT_OUT`** environment variable. `smc-serve` dumps on panic
//! ([`install_panic_hook`]), SIGUSR1, SLO breach, and failed drain verify.
//!
//! Recording is multi-producer: a writer claims a slot by one
//! `fetch_add` on the head and publishes it seqlock-style (tag 0 while
//! mid-write, `position + 1` when complete). Two writers only collide on a
//! slot when they are a whole ring apart ([`FLIGHT_CAPACITY`] events), in
//! which case the loser's record is torn and the tag check makes readers
//! skip it — an acceptable loss for a forensic ring, and one that never
//! blocks or corrupts the process.
//!
//! ```
//! use smc_obs::{flight, trace};
//! use smc_obs::trace::Event;
//!
//! flight::enable();
//! trace::emit(Event::EpochAdvance { epoch: 41 });
//! assert!(flight::snapshot()
//!     .iter()
//!     .any(|t| matches!(t.event, Event::EpochAdvance { epoch: 41 })));
//! flight::disable();
//! ```

use std::path::PathBuf;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::chrome::ChromeTrace;
use crate::report::JsonValue;
use crate::trace::{Event, TracedEvent};

/// Events the flight ring holds before overwriting the oldest. At 9 words
/// (72 bytes) per slot the whole recorder is a fixed ~288 KiB.
pub const FLIGHT_CAPACITY: usize = 4096;

/// Environment variable naming the dump destination. [`dump`] without it is
/// a no-op (recording still runs; there is just nowhere to write).
pub const FLIGHT_OUT_ENV: &str = "SMC_FLIGHT_OUT";

/// Seqlock slot: tag + (kind, seq, nanos, thread, p0..p3).
struct FlightSlot {
    tag: AtomicU64,
    words: [AtomicU64; 8],
}

impl FlightSlot {
    const fn new() -> FlightSlot {
        FlightSlot {
            tag: AtomicU64::new(0),
            words: [const { AtomicU64::new(0) }; 8],
        }
    }
}

struct FlightRing {
    head: AtomicU64,
    dropped: AtomicU64,
    slots: Box<[FlightSlot]>,
}

impl FlightRing {
    fn new() -> FlightRing {
        FlightRing {
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..FLIGHT_CAPACITY).map(|_| FlightSlot::new()).collect(),
        }
    }
}

/// The one ring, allocated on first [`enable`] and kept for the process
/// lifetime (so a race between `disable` and an in-flight `record` can
/// never use freed memory).
static RING: OnceLock<FlightRing> = OnceLock::new();

/// Turns the flight recorder on, allocating its ring on the first call.
/// Independent of [`crate::trace::enable`]: either sink can run alone.
pub fn enable() {
    RING.get_or_init(FlightRing::new);
    crate::trace::set_flight_mode(true);
}

/// Stops recording (the ring and its contents are retained, so a dump
/// after `disable` still shows the window leading up to it).
pub fn disable() {
    crate::trace::set_flight_mode(false);
}

/// True while the recorder is tapping emissions.
pub fn is_enabled() -> bool {
    ENABLED_HINT.load(Ordering::Relaxed) != 0
}

/// Mirror of the trace-mode flight bit, kept here so `is_enabled` needs no
/// access to the tracer's private mode word. Updated by `set_flight_mode`
/// via [`note_mode`].
static ENABLED_HINT: AtomicU64 = AtomicU64::new(0);

pub(crate) fn note_mode(on: bool) {
    ENABLED_HINT.store(on as u64, Ordering::Relaxed);
}

/// Records one already-encoded emission (called from `trace::emit` when the
/// flight mode bit is set). Wait-free: one `fetch_add` plus eight relaxed
/// stores.
pub(crate) fn record(thread: u64, seq: u64, nanos: u64, event: Event) {
    let Some(ring) = RING.get() else { return };
    let pos = ring.head.fetch_add(1, Ordering::Relaxed);
    if pos >= FLIGHT_CAPACITY as u64 {
        ring.dropped.fetch_add(1, Ordering::Relaxed);
    }
    let slot = &ring.slots[(pos as usize) % FLIGHT_CAPACITY];
    let (kind, p) = event.encode();
    slot.tag.store(0, Ordering::Relaxed);
    fence(Ordering::SeqCst);
    slot.words[0].store(kind, Ordering::Relaxed);
    slot.words[1].store(seq, Ordering::Relaxed);
    slot.words[2].store(nanos, Ordering::Relaxed);
    slot.words[3].store(thread, Ordering::Relaxed);
    slot.words[4].store(p[0], Ordering::Relaxed);
    slot.words[5].store(p[1], Ordering::Relaxed);
    slot.words[6].store(p[2], Ordering::Relaxed);
    slot.words[7].store(p[3], Ordering::Relaxed);
    slot.tag.store(pos + 1, Ordering::Release);
}

/// Every currently-consistent record in the ring, sorted by global
/// sequence number. Mid-write or torn slots are skipped.
pub fn snapshot() -> Vec<TracedEvent> {
    let Some(ring) = RING.get() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for slot in ring.slots.iter() {
        let t1 = slot.tag.load(Ordering::Acquire);
        if t1 == 0 {
            continue;
        }
        let kind = slot.words[0].load(Ordering::Relaxed);
        let seq = slot.words[1].load(Ordering::Relaxed);
        let nanos = slot.words[2].load(Ordering::Relaxed);
        let thread = slot.words[3].load(Ordering::Relaxed);
        let p = [
            slot.words[4].load(Ordering::Relaxed),
            slot.words[5].load(Ordering::Relaxed),
            slot.words[6].load(Ordering::Relaxed),
            slot.words[7].load(Ordering::Relaxed),
        ];
        fence(Ordering::SeqCst);
        if slot.tag.load(Ordering::Relaxed) != t1 {
            continue;
        }
        if let Some(event) = Event::decode(kind, p) {
            out.push(TracedEvent {
                seq,
                thread,
                nanos,
                event,
            });
        }
    }
    out.sort_by_key(|t| t.seq);
    out
}

/// Records overwritten by ring wraparound since [`enable`].
pub fn dropped() -> u64 {
    RING.get()
        .map(|r| r.dropped.load(Ordering::Relaxed))
        .unwrap_or(0)
}

/// Dumps the current flight window as a Chrome trace to the path named by
/// [`FLIGHT_OUT_ENV`], recording `trigger` (`panic`, `sigusr1`,
/// `slo-breach`, `drain-verify-failed`) as the document's `flightTrigger`
/// field. Returns the written path, or `None` when the env var is unset,
/// the recorder was never enabled, or the write failed (a dump must never
/// take the process down — it runs from panic hooks).
///
/// Dumps are serialized and each overwrites the previous one: the *last*
/// trigger before you look is the one you see, which is the forensic
/// contract (the window leading up to the most recent incident).
pub fn dump(trigger: &str) -> Option<PathBuf> {
    static DUMP_LOCK: Mutex<()> = Mutex::new(());
    let _g = DUMP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = PathBuf::from(std::env::var_os(FLIGHT_OUT_ENV)?);
    RING.get()?;
    let mut export = ChromeTrace::new();
    export.add_events(&snapshot());
    export.set_top_level("flightTrigger", JsonValue::from(trigger));
    export.set_top_level("flightDropped", JsonValue::from(dropped()));
    match export.write(&path) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("smc-obs: flight dump to {} failed: {e}", path.display());
            None
        }
    }
}

/// Chains a panic hook that dumps the flight window (trigger `panic`)
/// before the previous hook runs. Idempotent per call site in practice —
/// calling it twice dumps twice, which is harmless (same file).
pub fn install_panic_hook() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let _ = dump("panic");
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{self, test_lock, Label};

    #[test]
    fn flight_taps_emissions_without_ring_tracing() {
        let _g = test_lock();
        trace::disable();
        enable();
        trace::emit(Event::ReqStage {
            req: 0xf11647,
            stage: Label::new("conn"),
            nanos: 5,
        });
        let hit = snapshot()
            .iter()
            .any(|t| matches!(t.event, Event::ReqStage { req: 0xf11647, .. }));
        disable();
        assert!(hit, "flight records even while ring tracing is off");
        assert!(
            !trace::snapshot()
                .iter()
                .any(|t| matches!(t.event, Event::ReqStage { req: 0xf11647, .. })),
            "the per-thread rings stayed untouched"
        );
    }

    #[test]
    fn flight_wraps_and_counts_drops() {
        let _g = test_lock();
        enable();
        let before = dropped();
        let total = FLIGHT_CAPACITY as u64 + 50;
        for i in 0..total {
            trace::emit(Event::MorselDispatch {
                worker: 0xf1,
                morsel: i,
            });
        }
        let survivors = snapshot()
            .iter()
            .filter(|t| matches!(t.event, Event::MorselDispatch { worker: 0xf1, .. }))
            .count();
        disable();
        assert!(survivors <= FLIGHT_CAPACITY);
        assert!(
            survivors >= FLIGHT_CAPACITY - 64,
            "most of the window survives"
        );
        assert!(dropped() >= before + 50);
    }

    #[test]
    fn dump_without_env_is_a_noop() {
        let _g = test_lock();
        enable();
        // The test harness never sets SMC_FLIGHT_OUT; a dump with no
        // destination must return None without touching the filesystem.
        if std::env::var_os(FLIGHT_OUT_ENV).is_none() {
            assert_eq!(dump("test"), None);
        }
        disable();
    }

    #[test]
    fn disabled_recorder_snapshot_is_empty_before_first_enable() {
        // Can't assert RING is uninitialized (other tests share the
        // process), but snapshot() must never panic either way.
        let _ = snapshot();
        let _ = dropped();
    }
}
