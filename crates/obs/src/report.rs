//! Machine-readable benchmark reports (`BENCH_fig<N>.json`).
//!
//! Every `crates/bench/src/bin/fig*` binary routes its results through a
//! [`Report`]: the human-readable CSV keeps printing to stdout, while the
//! same rows — plus histogram summaries, counters, and pass/fail checks —
//! are serialized to `BENCH_fig<N>.json` so EXPERIMENTS.md tables are
//! regenerable and diffable across PRs. The schema is documented in the
//! EXPERIMENTS.md preamble.
//!
//! The emitter is dependency-free: [`JsonValue`] is a minimal JSON document
//! model with a canonical serializer (sorted object keys are the caller's
//! responsibility; insertion order is preserved).

use std::fmt::Write as _;
use std::path::PathBuf;

use crate::hist::Histogram;

/// A minimal JSON document model (no external deps).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object (keys are appended with [`set`](JsonValue::set)).
    pub fn obj() -> JsonValue {
        JsonValue::Obj(Vec::new())
    }

    /// Sets `key` on an object, replacing an existing entry in place or
    /// appending otherwise. Panics when `self` is not an object (a
    /// document-building programming error).
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<JsonValue>) {
        let key = key.into();
        let value = value.into();
        match self {
            JsonValue::Obj(fields) => {
                if let Some(f) = fields.iter_mut().find(|(k, _)| *k == key) {
                    f.1 = value;
                } else {
                    fields.push((key, value));
                }
            }
            other => panic!("JsonValue::set on non-object {other:?}"),
        }
    }

    /// Serializes the value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    /// Parses a JSON document (the inverse of [`to_json`](Self::to_json)).
    /// Dependency-free recursive descent over the full grammar (objects,
    /// arrays, strings with `\uXXXX` escapes, numbers, literals); trailing
    /// non-whitespace or any syntax error yields `Err` with a byte offset.
    /// `smc-serve`'s `Scrape` responses travel as JSON, so the client side
    /// needs a reader as well as a writer.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Object field access (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_json_string(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursive-descent state for [`JsonValue::parse`].
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at offset {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b't' => self.lit("true", JsonValue::Bool(true)),
            b'f' => self.lit("false", JsonValue::Bool(false)),
            b'n' => self.lit("null", JsonValue::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected byte")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unexpected end"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            s.push(c.ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("unexpected end"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("bad hex"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad hex"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        s.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("bad number"))
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> JsonValue {
        JsonValue::Bool(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> JsonValue {
        JsonValue::Num(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> JsonValue {
        JsonValue::Num(v as f64)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> JsonValue {
        JsonValue::Num(v as f64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> JsonValue {
        JsonValue::Num(v as f64)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> JsonValue {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> JsonValue {
        JsonValue::Str(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> JsonValue {
        JsonValue::Num(v as f64)
    }
}

/// One named data series (mirrors one CSV table the binary prints).
#[derive(Debug, Clone)]
pub struct Series {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<JsonValue>>,
}

/// A pass/fail parity or sanity check recorded by a bench binary.
#[derive(Debug, Clone)]
pub struct Check {
    name: String,
    passed: bool,
    detail: String,
}

/// The accumulating report behind one `BENCH_fig<N>.json` file.
///
/// ```
/// use smc_obs::report::Report;
///
/// let mut report = Report::new("fig99", "doctest example");
/// report.param("threads", 4u64);
/// let s = report.series("throughput", &["threads", "mrows_per_s"]);
/// report.push_row(s, vec![1u64.into(), 95.5f64.into()]);
/// report.check("parity", true, "seq == par");
/// let json = report.to_json();
/// assert!(json.contains("\"figure\":\"fig99\""));
/// assert!(report.all_checks_passed());
/// ```
#[derive(Debug, Clone)]
pub struct Report {
    figure: String,
    title: String,
    params: Vec<(String, JsonValue)>,
    series: Vec<Series>,
    histograms: Vec<(String, JsonValue)>,
    counters: Vec<(String, u64)>,
    checks: Vec<Check>,
}

/// Index of a series within a [`Report`] (returned by [`Report::series`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

impl Report {
    /// Starts an empty report for `figure` (e.g. `"fig14"`).
    pub fn new(figure: impl Into<String>, title: impl Into<String>) -> Report {
        Report {
            figure: figure.into(),
            title: title.into(),
            params: Vec::new(),
            series: Vec::new(),
            histograms: Vec::new(),
            counters: Vec::new(),
            checks: Vec::new(),
        }
    }

    /// Records one run parameter (scale factor, thread count, seed, …).
    pub fn param(&mut self, name: impl Into<String>, value: impl Into<JsonValue>) {
        self.params.push((name.into(), value.into()));
    }

    /// Opens a named series with the given column names; rows are appended
    /// with [`push_row`](Report::push_row).
    pub fn series(&mut self, name: impl Into<String>, columns: &[&str]) -> SeriesId {
        self.series.push(Series {
            name: name.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        });
        SeriesId(self.series.len() - 1)
    }

    /// Appends one row to a series. Panics if the arity mismatches the
    /// series' columns (a bench-binary programming error).
    pub fn push_row(&mut self, id: SeriesId, row: Vec<JsonValue>) {
        let s = &mut self.series[id.0];
        assert_eq!(
            row.len(),
            s.columns.len(),
            "row arity mismatch in series {:?}",
            s.name
        );
        s.rows.push(row);
    }

    /// Records a [`Histogram`]'s full summary (count/min/max/mean and
    /// p50/p95/p99, all in nanoseconds) under `name`.
    pub fn histogram(&mut self, name: impl Into<String>, hist: &Histogram) {
        let s = hist.summary();
        self.histograms.push((
            name.into(),
            JsonValue::Obj(vec![
                ("count".into(), s.count.into()),
                ("sum_ns".into(), s.sum.into()),
                ("min_ns".into(), s.min.into()),
                ("max_ns".into(), s.max.into()),
                ("mean_ns".into(), s.mean.into()),
                ("p50_ns".into(), s.p50.into()),
                ("p95_ns".into(), s.p95.into()),
                ("p99_ns".into(), s.p99.into()),
            ]),
        ));
    }

    /// Records a pre-built histogram summary object under `name` — same
    /// shape as [`histogram`](Report::histogram), for summaries that were
    /// scraped over the wire from a live server rather than measured in
    /// this process (e.g. the tail-latency attribution in `SCRAPE`).
    pub fn histogram_json(&mut self, name: impl Into<String>, summary: JsonValue) {
        self.histograms.push((name.into(), summary));
    }

    /// Records a named scalar counter (e.g. a `MemoryStats` field).
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.push((name.into(), value));
    }

    /// Records a pass/fail check. Failed checks make
    /// [`all_checks_passed`](Report::all_checks_passed) false; bench
    /// binaries exit non-zero in that case *after* writing the report.
    pub fn check(&mut self, name: impl Into<String>, passed: bool, detail: impl Into<String>) {
        self.checks.push(Check {
            name: name.into(),
            passed,
            detail: detail.into(),
        });
    }

    /// True when no recorded check failed.
    pub fn all_checks_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Names and details of failed checks (for the human-readable summary).
    pub fn failed_checks(&self) -> Vec<(String, String)> {
        self.checks
            .iter()
            .filter(|c| !c.passed)
            .map(|c| (c.name.clone(), c.detail.clone()))
            .collect()
    }

    /// Serializes the report to its JSON document (schema in
    /// EXPERIMENTS.md).
    pub fn to_json(&self) -> String {
        let series = self
            .series
            .iter()
            .map(|s| {
                JsonValue::Obj(vec![
                    ("name".into(), s.name.as_str().into()),
                    (
                        "columns".into(),
                        JsonValue::Arr(s.columns.iter().map(|c| c.as_str().into()).collect()),
                    ),
                    (
                        "rows".into(),
                        JsonValue::Arr(s.rows.iter().map(|r| JsonValue::Arr(r.clone())).collect()),
                    ),
                ])
            })
            .collect();
        let checks = self
            .checks
            .iter()
            .map(|c| {
                JsonValue::Obj(vec![
                    ("name".into(), c.name.as_str().into()),
                    ("passed".into(), c.passed.into()),
                    ("detail".into(), c.detail.as_str().into()),
                ])
            })
            .collect();
        let doc = JsonValue::Obj(vec![
            ("schema".into(), "smc-bench-report/v1".into()),
            ("figure".into(), self.figure.as_str().into()),
            ("title".into(), self.title.as_str().into()),
            ("params".into(), JsonValue::Obj(self.params.clone())),
            ("series".into(), JsonValue::Arr(series)),
            ("histograms".into(), JsonValue::Obj(self.histograms.clone())),
            (
                "counters".into(),
                JsonValue::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), (*v).into()))
                        .collect(),
                ),
            ),
            ("checks".into(), JsonValue::Arr(checks)),
            ("all_checks_passed".into(), self.all_checks_passed().into()),
        ]);
        doc.to_json()
    }

    /// The output path: `$SMC_BENCH_DIR/BENCH_<figure>.json`, or the
    /// current directory when the variable is unset.
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var_os("SMC_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        dir.join(format!("BENCH_{}.json", self.figure))
    }

    /// Writes the JSON document to [`path`](Report::path), returning the
    /// path written.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        std::fs::write(&path, self.to_json() + "\n")?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_and_primitives() {
        assert_eq!(JsonValue::Null.to_json(), "null");
        assert_eq!(JsonValue::Bool(true).to_json(), "true");
        assert_eq!(JsonValue::Num(1.5).to_json(), "1.5");
        assert_eq!(JsonValue::Num(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_json(), "null");
        assert_eq!(
            JsonValue::Str("a\"b\\c\nd\u{1}".into()).to_json(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
        assert_eq!(
            JsonValue::Arr(vec![1u64.into(), "x".into()]).to_json(),
            r#"[1,"x"]"#
        );
    }

    #[test]
    fn parse_round_trips_a_report_document() {
        let mut r = Report::new("fig00", "round trip");
        r.param("sf", 0.01f64);
        let s = r.series("main", &["n", "ms"]);
        r.push_row(s, vec![10u64.into(), 1.25f64.into()]);
        r.check("parity", true, "ok");
        let json = r.to_json();
        let doc = JsonValue::parse(&json).expect("own output parses");
        assert_eq!(doc.to_json(), json, "parse ∘ serialize is the identity");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("smc-bench-report/v1")
        );
        assert_eq!(
            doc.get("all_checks_passed").and_then(|v| v.as_bool()),
            Some(true)
        );
    }

    #[test]
    fn parse_handles_escapes_nesting_and_rejects_garbage() {
        let v = JsonValue::parse(r#"{"a":[1,-2.5,3e2],"s":"q\"\nA😀","n":null}"#).unwrap();
        assert_eq!(v.get("s").and_then(|s| s.as_str()), Some("q\"\nA😀"));
        let arr = v.get("a").and_then(|a| a.as_arr()).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_f64(), Some(300.0));
        assert_eq!(v.get("n"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::parse("  true  ").unwrap(), JsonValue::Bool(true));
        for bad in ["", "{", "[1,", "\"unterminated", "{\"a\":}", "12 34", "nul"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} must not parse");
        }
        assert_eq!(JsonValue::Num(1.5).as_u64(), None, "non-integers reject");
    }

    #[test]
    fn report_document_shape() {
        let mut r = Report::new("fig00", "test figure");
        r.param("sf", 0.01f64);
        let s = r.series("main", &["n", "ms"]);
        r.push_row(s, vec![10u64.into(), 1.25f64.into()]);
        r.push_row(s, vec![20u64.into(), 2.5f64.into()]);
        let hist = Histogram::new();
        hist.record(1000);
        hist.record(2000);
        r.histogram("gc_pause_ns", &hist);
        r.counter("blocks_scanned", 42);
        r.check("parity", true, "ok");
        let json = r.to_json();
        assert!(json.starts_with(r#"{"schema":"smc-bench-report/v1""#));
        assert!(json.contains(r#""figure":"fig00""#));
        assert!(json.contains(r#""columns":["n","ms"]"#));
        assert!(json.contains(r#""rows":[[10,1.25],[20,2.5]]"#));
        assert!(json.contains(r#""gc_pause_ns":{"count":2"#));
        assert!(json.contains(r#""blocks_scanned":42"#));
        assert!(json.contains(r#""all_checks_passed":true"#));
    }

    #[test]
    fn failed_checks_flip_the_flag() {
        let mut r = Report::new("fig00", "t");
        r.check("a", true, "fine");
        r.check("b", false, "seq=3 par=4");
        assert!(!r.all_checks_passed());
        assert_eq!(r.failed_checks(), vec![("b".into(), "seq=3 par=4".into())]);
        assert!(r.to_json().contains(r#""all_checks_passed":false"#));
    }

    #[test]
    fn path_honours_bench_dir_layout() {
        let r = Report::new("fig14", "t");
        let p = r.path();
        assert!(p.ends_with("BENCH_fig14.json"), "{p:?}");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Report::new("fig00", "t");
        let s = r.series("main", &["a", "b"]);
        r.push_row(s, vec![1u64.into()]);
    }
}
