//! Machine-readable benchmark reports (`BENCH_fig<N>.json`).
//!
//! Every `crates/bench/src/bin/fig*` binary routes its results through a
//! [`Report`]: the human-readable CSV keeps printing to stdout, while the
//! same rows — plus histogram summaries, counters, and pass/fail checks —
//! are serialized to `BENCH_fig<N>.json` so EXPERIMENTS.md tables are
//! regenerable and diffable across PRs. The schema is documented in the
//! EXPERIMENTS.md preamble.
//!
//! The emitter is dependency-free: [`JsonValue`] is a minimal JSON document
//! model with a canonical serializer (sorted object keys are the caller's
//! responsibility; insertion order is preserved).

use std::fmt::Write as _;
use std::path::PathBuf;

use crate::hist::Histogram;

/// A minimal JSON document model (no external deps).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object (keys are appended with [`set`](JsonValue::set)).
    pub fn obj() -> JsonValue {
        JsonValue::Obj(Vec::new())
    }

    /// Sets `key` on an object, replacing an existing entry in place or
    /// appending otherwise. Panics when `self` is not an object (a
    /// document-building programming error).
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<JsonValue>) {
        let key = key.into();
        let value = value.into();
        match self {
            JsonValue::Obj(fields) => {
                if let Some(f) = fields.iter_mut().find(|(k, _)| *k == key) {
                    f.1 = value;
                } else {
                    fields.push((key, value));
                }
            }
            other => panic!("JsonValue::set on non-object {other:?}"),
        }
    }

    /// Serializes the value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_json_string(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> JsonValue {
        JsonValue::Bool(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> JsonValue {
        JsonValue::Num(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> JsonValue {
        JsonValue::Num(v as f64)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> JsonValue {
        JsonValue::Num(v as f64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> JsonValue {
        JsonValue::Num(v as f64)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> JsonValue {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> JsonValue {
        JsonValue::Str(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> JsonValue {
        JsonValue::Num(v as f64)
    }
}

/// One named data series (mirrors one CSV table the binary prints).
#[derive(Debug, Clone)]
pub struct Series {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<JsonValue>>,
}

/// A pass/fail parity or sanity check recorded by a bench binary.
#[derive(Debug, Clone)]
pub struct Check {
    name: String,
    passed: bool,
    detail: String,
}

/// The accumulating report behind one `BENCH_fig<N>.json` file.
///
/// ```
/// use smc_obs::report::Report;
///
/// let mut report = Report::new("fig99", "doctest example");
/// report.param("threads", 4u64);
/// let s = report.series("throughput", &["threads", "mrows_per_s"]);
/// report.push_row(s, vec![1u64.into(), 95.5f64.into()]);
/// report.check("parity", true, "seq == par");
/// let json = report.to_json();
/// assert!(json.contains("\"figure\":\"fig99\""));
/// assert!(report.all_checks_passed());
/// ```
#[derive(Debug, Clone)]
pub struct Report {
    figure: String,
    title: String,
    params: Vec<(String, JsonValue)>,
    series: Vec<Series>,
    histograms: Vec<(String, JsonValue)>,
    counters: Vec<(String, u64)>,
    checks: Vec<Check>,
}

/// Index of a series within a [`Report`] (returned by [`Report::series`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

impl Report {
    /// Starts an empty report for `figure` (e.g. `"fig14"`).
    pub fn new(figure: impl Into<String>, title: impl Into<String>) -> Report {
        Report {
            figure: figure.into(),
            title: title.into(),
            params: Vec::new(),
            series: Vec::new(),
            histograms: Vec::new(),
            counters: Vec::new(),
            checks: Vec::new(),
        }
    }

    /// Records one run parameter (scale factor, thread count, seed, …).
    pub fn param(&mut self, name: impl Into<String>, value: impl Into<JsonValue>) {
        self.params.push((name.into(), value.into()));
    }

    /// Opens a named series with the given column names; rows are appended
    /// with [`push_row`](Report::push_row).
    pub fn series(&mut self, name: impl Into<String>, columns: &[&str]) -> SeriesId {
        self.series.push(Series {
            name: name.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        });
        SeriesId(self.series.len() - 1)
    }

    /// Appends one row to a series. Panics if the arity mismatches the
    /// series' columns (a bench-binary programming error).
    pub fn push_row(&mut self, id: SeriesId, row: Vec<JsonValue>) {
        let s = &mut self.series[id.0];
        assert_eq!(
            row.len(),
            s.columns.len(),
            "row arity mismatch in series {:?}",
            s.name
        );
        s.rows.push(row);
    }

    /// Records a [`Histogram`]'s full summary (count/min/max/mean and
    /// p50/p95/p99, all in nanoseconds) under `name`.
    pub fn histogram(&mut self, name: impl Into<String>, hist: &Histogram) {
        let s = hist.summary();
        self.histograms.push((
            name.into(),
            JsonValue::Obj(vec![
                ("count".into(), s.count.into()),
                ("sum_ns".into(), s.sum.into()),
                ("min_ns".into(), s.min.into()),
                ("max_ns".into(), s.max.into()),
                ("mean_ns".into(), s.mean.into()),
                ("p50_ns".into(), s.p50.into()),
                ("p95_ns".into(), s.p95.into()),
                ("p99_ns".into(), s.p99.into()),
            ]),
        ));
    }

    /// Records a named scalar counter (e.g. a `MemoryStats` field).
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.push((name.into(), value));
    }

    /// Records a pass/fail check. Failed checks make
    /// [`all_checks_passed`](Report::all_checks_passed) false; bench
    /// binaries exit non-zero in that case *after* writing the report.
    pub fn check(&mut self, name: impl Into<String>, passed: bool, detail: impl Into<String>) {
        self.checks.push(Check {
            name: name.into(),
            passed,
            detail: detail.into(),
        });
    }

    /// True when no recorded check failed.
    pub fn all_checks_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Names and details of failed checks (for the human-readable summary).
    pub fn failed_checks(&self) -> Vec<(String, String)> {
        self.checks
            .iter()
            .filter(|c| !c.passed)
            .map(|c| (c.name.clone(), c.detail.clone()))
            .collect()
    }

    /// Serializes the report to its JSON document (schema in
    /// EXPERIMENTS.md).
    pub fn to_json(&self) -> String {
        let series = self
            .series
            .iter()
            .map(|s| {
                JsonValue::Obj(vec![
                    ("name".into(), s.name.as_str().into()),
                    (
                        "columns".into(),
                        JsonValue::Arr(s.columns.iter().map(|c| c.as_str().into()).collect()),
                    ),
                    (
                        "rows".into(),
                        JsonValue::Arr(s.rows.iter().map(|r| JsonValue::Arr(r.clone())).collect()),
                    ),
                ])
            })
            .collect();
        let checks = self
            .checks
            .iter()
            .map(|c| {
                JsonValue::Obj(vec![
                    ("name".into(), c.name.as_str().into()),
                    ("passed".into(), c.passed.into()),
                    ("detail".into(), c.detail.as_str().into()),
                ])
            })
            .collect();
        let doc = JsonValue::Obj(vec![
            ("schema".into(), "smc-bench-report/v1".into()),
            ("figure".into(), self.figure.as_str().into()),
            ("title".into(), self.title.as_str().into()),
            ("params".into(), JsonValue::Obj(self.params.clone())),
            ("series".into(), JsonValue::Arr(series)),
            ("histograms".into(), JsonValue::Obj(self.histograms.clone())),
            (
                "counters".into(),
                JsonValue::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), (*v).into()))
                        .collect(),
                ),
            ),
            ("checks".into(), JsonValue::Arr(checks)),
            ("all_checks_passed".into(), self.all_checks_passed().into()),
        ]);
        doc.to_json()
    }

    /// The output path: `$SMC_BENCH_DIR/BENCH_<figure>.json`, or the
    /// current directory when the variable is unset.
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var_os("SMC_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        dir.join(format!("BENCH_{}.json", self.figure))
    }

    /// Writes the JSON document to [`path`](Report::path), returning the
    /// path written.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        std::fs::write(&path, self.to_json() + "\n")?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_and_primitives() {
        assert_eq!(JsonValue::Null.to_json(), "null");
        assert_eq!(JsonValue::Bool(true).to_json(), "true");
        assert_eq!(JsonValue::Num(1.5).to_json(), "1.5");
        assert_eq!(JsonValue::Num(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_json(), "null");
        assert_eq!(
            JsonValue::Str("a\"b\\c\nd\u{1}".into()).to_json(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
        assert_eq!(
            JsonValue::Arr(vec![1u64.into(), "x".into()]).to_json(),
            r#"[1,"x"]"#
        );
    }

    #[test]
    fn report_document_shape() {
        let mut r = Report::new("fig00", "test figure");
        r.param("sf", 0.01f64);
        let s = r.series("main", &["n", "ms"]);
        r.push_row(s, vec![10u64.into(), 1.25f64.into()]);
        r.push_row(s, vec![20u64.into(), 2.5f64.into()]);
        let hist = Histogram::new();
        hist.record(1000);
        hist.record(2000);
        r.histogram("gc_pause_ns", &hist);
        r.counter("blocks_scanned", 42);
        r.check("parity", true, "ok");
        let json = r.to_json();
        assert!(json.starts_with(r#"{"schema":"smc-bench-report/v1""#));
        assert!(json.contains(r#""figure":"fig00""#));
        assert!(json.contains(r#""columns":["n","ms"]"#));
        assert!(json.contains(r#""rows":[[10,1.25],[20,2.5]]"#));
        assert!(json.contains(r#""gc_pause_ns":{"count":2"#));
        assert!(json.contains(r#""blocks_scanned":42"#));
        assert!(json.contains(r#""all_checks_passed":true"#));
    }

    #[test]
    fn failed_checks_flip_the_flag() {
        let mut r = Report::new("fig00", "t");
        r.check("a", true, "fine");
        r.check("b", false, "seq=3 par=4");
        assert!(!r.all_checks_passed());
        assert_eq!(r.failed_checks(), vec![("b".into(), "seq=3 par=4".into())]);
        assert!(r.to_json().contains(r#""all_checks_passed":false"#));
    }

    #[test]
    fn path_honours_bench_dir_layout() {
        let r = Report::new("fig14", "t");
        let p = r.path();
        assert!(p.ends_with("BENCH_fig14.json"), "{p:?}");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Report::new("fig00", "t");
        let s = r.series("main", &["a", "b"]);
        r.push_row(s, vec![1u64.into()]);
    }
}
