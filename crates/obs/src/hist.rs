//! Log2-bucketed, mergeable latency histograms (HDR-style).
//!
//! A [`Histogram`] is a fixed-size array of atomic counters — no allocation
//! at record time, `const`-constructible (so it can live in a `static`), and
//! mergeable across threads by bucket-wise addition. Values are bucketed by
//! their power of two with [`SUB_BUCKETS`] linear sub-buckets per power, so
//! any reported quantile is within `1/SUB_BUCKETS` (6.25 %) of the true
//! value; values below [`SUB_BUCKETS`] are exact. The observed sum, maximum
//! and minimum are tracked exactly alongside the buckets, so `mean()` and
//! `max()` carry no bucketing error.
//!
//! This is the pause/latency substrate required by the evaluation: GC and
//! compaction pauses (Fig 9) and per-query latencies are recorded here and
//! reported as p50/p95/p99 in the `BENCH_*.json` files.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per power of two (16 → ≤ 6.25 % quantile error).
pub const SUB_BUCKETS: usize = 16;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: usize = 4;
/// Total bucket count covering the full `u64` range.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS) * SUB_BUCKETS + SUB_BUCKETS;

/// A lock-free, fixed-footprint, mergeable log2 histogram of `u64` samples
/// (by convention: nanoseconds).
///
/// ```
/// use smc_obs::hist::Histogram;
///
/// let h = Histogram::new();
/// for v in [100, 200, 300, 400, 10_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 10_000);
/// // p50 lands in the bucket containing 300 (≤ 6.25 % wide).
/// let p50 = h.percentile(50.0);
/// assert!((281..=320).contains(&p50), "{p50}");
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram. `const`, so histograms can be `static`:
    /// recording never allocates.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Index of the bucket holding `v`: exact below [`SUB_BUCKETS`], then
    /// `SUB_BUCKETS` linear sub-buckets per power of two.
    pub fn bucket_index(v: u64) -> usize {
        if v < SUB_BUCKETS as u64 {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros() as usize;
            let sub = (v >> (msb - SUB_BITS)) as usize; // in [16, 32)
            (msb - SUB_BITS) * SUB_BUCKETS + sub
        }
    }

    /// Smallest value mapping to bucket `i` (inverse of
    /// [`bucket_index`](Self::bucket_index)).
    pub fn bucket_low(i: usize) -> u64 {
        if i < 2 * SUB_BUCKETS {
            i as u64
        } else {
            let msb = i / SUB_BUCKETS + SUB_BITS - 1;
            let sub = (i % SUB_BUCKETS + SUB_BUCKETS) as u64;
            sub << (msb - SUB_BITS)
        }
    }

    /// Largest value mapping to bucket `i`.
    pub fn bucket_high(i: usize) -> u64 {
        if i + 1 >= NUM_BUCKETS {
            u64::MAX
        } else {
            Self::bucket_low(i + 1) - 1
        }
    }

    /// Records one sample. Lock-free: one `fetch_add` on the bucket plus the
    /// exact count/sum/max/min updates, all relaxed.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Exact minimum sample (0 when empty).
    pub fn min(&self) -> u64 {
        match self.min.load(Ordering::Relaxed) {
            u64::MAX => 0,
            v => v,
        }
    }

    /// Exact mean sample (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Value at or below which `p` percent of samples fall, reported as the
    /// containing bucket's upper bound (≤ 6.25 % above the true quantile)
    /// clamped to the exact observed maximum. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 100.0) / 100.0 * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return Self::bucket_high(i).min(self.max());
            }
        }
        self.max()
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Adds every sample of `other` into `self` (bucket-wise). This is how
    /// per-thread or per-run histograms combine into one report.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Zeroes every bucket and statistic.
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
    }

    /// Point-in-time summary (the shape serialized into `BENCH_*.json`).
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.p50(),
            p95: self.p95(),
            p99: self.p99(),
        }
    }
}

/// Plain-value percentile summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Exact sum of samples.
    pub sum: u64,
    /// Exact minimum sample.
    pub min: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Exact mean sample.
    pub mean: u64,
    /// Median, within one bucket (≤ 6.25 %).
    pub p50: u64,
    /// 95th percentile, within one bucket.
    pub p95: u64,
    /// 99th percentile, within one bucket.
    pub p99: u64,
}

impl std::fmt::Display for Summary {
    /// `count=… p50=… p95=… p99=… max=…`, durations rendered in ms.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ms = |n: u64| n as f64 / 1e6;
        write!(
            f,
            "count={} p50={:.3}ms p95={:.3}ms p99={:.3}ms max={:.3}ms",
            self.count,
            ms(self.p50),
            ms(self.p95),
            ms(self.p99),
            ms(self.max)
        )
    }
}

/// A named registry of histograms, mergeable **on demand** instead of only
/// at report time.
///
/// Worker threads (or subsystems) register their own `Arc<Histogram>` under
/// a shared name and keep recording into it lock-free; any observer —
/// `smc-top`'s refresh loop, a mid-run snapshot, the final report — can ask
/// for [`merged`](Registry::merged) at any moment and gets a point-in-time
/// combination of every registration without stopping the writers. The
/// registry holds weak references, so a thread dropping its histogram
/// unregisters it implicitly.
///
/// ```
/// use std::sync::Arc;
/// use smc_obs::hist::{Histogram, Registry};
///
/// let reg = Registry::new();
/// let a = Arc::new(Histogram::new());
/// let b = Arc::new(Histogram::new());
/// reg.register("op_latency", &a);
/// reg.register("op_latency", &b);
/// a.record(10);
/// b.record(30);
/// assert_eq!(reg.merged("op_latency").count(), 2); // merged on demand
/// a.record(20);
/// assert_eq!(reg.merged("op_latency").count(), 3); // no re-registration
/// ```
pub struct Registry {
    entries: std::sync::Mutex<Vec<(String, std::sync::Weak<Histogram>)>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry. `const`, so a registry can be `static`.
    pub const fn new() -> Registry {
        Registry {
            entries: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// The process-global registry (what `smc-top` and the bench harness
    /// observe).
    pub fn global() -> &'static Registry {
        static GLOBAL: Registry = Registry::new();
        &GLOBAL
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<(String, std::sync::Weak<Histogram>)>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers `hist` under `name`. Idempotent per (name, histogram)
    /// pair; dead weak entries are pruned opportunistically.
    pub fn register(&self, name: &str, hist: &std::sync::Arc<Histogram>) {
        let mut entries = self.lock();
        entries.retain(|(_, w)| w.strong_count() > 0);
        let already = entries.iter().any(|(n, w)| {
            n == name
                && w.upgrade()
                    .is_some_and(|h| std::sync::Arc::ptr_eq(&h, hist))
        });
        if !already {
            entries.push((name.to_string(), std::sync::Arc::downgrade(hist)));
        }
    }

    /// Every distinct registered name, sorted, still-live entries only.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .lock()
            .iter()
            .filter(|(_, w)| w.strong_count() > 0)
            .map(|(n, _)| n.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Merges every live histogram registered under `name` into one
    /// point-in-time combination (empty when the name is unknown).
    pub fn merged(&self, name: &str) -> Histogram {
        let out = Histogram::new();
        for (n, w) in self.lock().iter() {
            if n == name {
                if let Some(h) = w.upgrade() {
                    out.merge(&h);
                }
            }
        }
        out
    }

    /// `(name, merged histogram)` for every distinct live name.
    pub fn merged_all(&self) -> Vec<(String, Histogram)> {
        self.names()
            .into_iter()
            .map(|n| {
                let m = self.merged(&n);
                (n, m)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_drops_dead_entries() {
        let reg = Registry::new();
        let a = std::sync::Arc::new(Histogram::new());
        a.record(5);
        reg.register("x", &a);
        {
            let b = std::sync::Arc::new(Histogram::new());
            b.record(7);
            reg.register("x", &b);
            assert_eq!(reg.merged("x").count(), 2);
        }
        // `b` dropped: its registration vanishes without explicit cleanup.
        assert_eq!(reg.merged("x").count(), 1);
        assert_eq!(reg.names(), vec!["x".to_string()]);
        assert_eq!(reg.merged("unknown").count(), 0);
    }

    #[test]
    fn registry_register_is_idempotent() {
        let reg = Registry::new();
        let a = std::sync::Arc::new(Histogram::new());
        a.record(1);
        reg.register("y", &a);
        reg.register("y", &a);
        assert_eq!(reg.merged("y").count(), 1, "double registration ignored");
        assert_eq!(reg.merged_all().len(), 1);
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(Histogram::bucket_index(v), v as usize);
            assert_eq!(Histogram::bucket_low(v as usize), v);
            assert_eq!(Histogram::bucket_high(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_are_contiguous_and_monotonic() {
        // Every bucket's low bound is one past the previous bucket's high
        // bound, across the sub-bucket and power-of-two transitions.
        for i in 1..NUM_BUCKETS - 1 {
            assert_eq!(
                Histogram::bucket_low(i),
                Histogram::bucket_high(i - 1) + 1,
                "gap at bucket {i}"
            );
        }
        // Spot-check the documented transitions.
        assert_eq!(Histogram::bucket_index(15), 15);
        assert_eq!(Histogram::bucket_index(16), 16);
        assert_eq!(Histogram::bucket_index(31), 31);
        assert_eq!(Histogram::bucket_index(32), 32);
        assert_eq!(Histogram::bucket_index(33), 32, "32 and 33 share a bucket");
        assert_eq!(Histogram::bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn every_value_lands_within_its_bucket_bounds() {
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for probe in [v, v + 1, v.saturating_mul(3) / 2] {
                let i = Histogram::bucket_index(probe);
                assert!(
                    Histogram::bucket_low(i) <= probe,
                    "{probe} below bucket {i}"
                );
                assert!(
                    probe <= Histogram::bucket_high(i),
                    "{probe} above bucket {i}"
                );
            }
            v *= 2;
        }
    }

    #[test]
    fn relative_error_bounded() {
        // Bucket width / low bound ≤ 1/16 for values ≥ 2 * SUB_BUCKETS.
        let mut v = 32u64;
        while v < 1 << 60 {
            let i = Histogram::bucket_index(v);
            let width = Histogram::bucket_high(i) - Histogram::bucket_low(i) + 1;
            assert!(
                (width as f64) / (Histogram::bucket_low(i) as f64) <= 1.0 / 16.0 + 1e-12,
                "bucket {i} too wide: {width} at {v}"
            );
            v = v.saturating_mul(7) / 3;
        }
    }

    #[test]
    fn percentiles_on_known_distribution() {
        let h = Histogram::new();
        // 1..=100 → p50 ≈ 50, p95 ≈ 95, p99 ≈ 99; all within one bucket.
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.mean(), 50);
        let within = |got: u64, want: u64| {
            let i = Histogram::bucket_index(want);
            (Histogram::bucket_low(i)..=Histogram::bucket_high(i)).contains(&got)
        };
        assert!(within(h.p50(), 50), "p50={}", h.p50());
        assert!(within(h.p95(), 95), "p95={}", h.p95());
        assert!(within(h.p99(), 99), "p99={}", h.p99());
        // p100 is the exact maximum; p0 still returns a value ≥ min.
        assert_eq!(h.percentile(100.0), 100);
        assert!(h.percentile(0.0) >= 1);
    }

    #[test]
    fn percentile_clamped_to_exact_max() {
        let h = Histogram::new();
        h.record(1_000_003); // bucket upper bound is far above the sample
        assert_eq!(h.p50(), 1_000_003);
        assert_eq!(h.p99(), 1_000_003);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.summary(), Summary::default());
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [10u64, 20, 30] {
            a.record(v);
        }
        for v in [1u64, 1_000_000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 1_000_061);
        assert_eq!(a.max(), 1_000_000);
        assert_eq!(a.min(), 1);
        // Merged percentiles see both populations.
        assert!(a.p50() <= 30);
        assert!(a.p99() >= 900_000);
        // b is untouched.
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn merge_is_bucketwise_exact() {
        let a = Histogram::new();
        let b = Histogram::new();
        let merged = Histogram::new();
        for v in 0..1000u64 {
            let h = if v % 2 == 0 { &a } else { &b };
            h.record(v * 17);
            merged.record(v * 17);
        }
        a.merge(&b);
        for p in [1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0] {
            assert_eq!(a.percentile(p), merged.percentile(p), "p{p}");
        }
    }

    #[test]
    fn reset_zeroes_everything() {
        let h = Histogram::new();
        h.record_n(42, 10);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.p99(), 0);
        h.record(7);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 7);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i % 97);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }

    #[test]
    fn summary_display_renders_ms() {
        let h = Histogram::new();
        h.record(2_000_000); // 2 ms
        let s = h.summary().to_string();
        assert!(s.contains("count=1"), "{s}");
        assert!(s.contains("max=2.000ms"), "{s}");
    }

    #[test]
    fn duration_recording() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(5));
        assert_eq!(h.max(), 5_000);
    }
}
