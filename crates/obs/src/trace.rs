//! Lock-free, thread-local structured event tracing.
//!
//! Every subsystem of the workspace emits typed [`Event`]s through
//! [`emit`]: GC pauses, epoch advances, the compaction-group lifecycle
//! (select → relocate → retire), budget recovery-ladder rungs, failpoint
//! trips, and morsel dispatch. Tracing is **disabled by default** and the
//! disabled path is a single relaxed load and a predictable branch — no
//! allocation, no time-stamping, no TLS access — so instrumented hot paths
//! stay unperturbed (`tests/overhead.rs` asserts ≤ 2 ns/op in release).
//!
//! When [enabled](enable), each thread writes into its own fixed-size ring
//! buffer of [`RING_CAPACITY`] slots (registered globally on first use, so
//! [`snapshot`] can observe every thread). Writes are wait-free for the
//! owning thread; a concurrent [`snapshot`] validates each slot with a
//! seqlock-style tag and simply skips slots that are mid-write. When a ring
//! wraps, the oldest events are overwritten and counted in [`dropped`] —
//! tracing never blocks or grows memory.
//!
//! Events are POD ([`Copy`], no heap): textual payloads travel as fixed
//! 15-byte [`Label`]s. Each emitted event carries a global sequence number
//! (total order across threads) and nanoseconds since the first
//! [`enable`]/emission.
//!
//! ```
//! use smc_obs::trace::{self, Event};
//!
//! trace::enable();
//! trace::emit(Event::EpochAdvance { epoch: 7 });
//! let events = trace::snapshot();
//! assert!(events
//!     .iter()
//!     .any(|t| matches!(t.event, Event::EpochAdvance { epoch: 7 })));
//! trace::disable();
//! ```

use std::cell::{Cell, UnsafeCell};
use std::sync::atomic::{fence, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::hist::Histogram;

/// Events each per-thread ring can hold before overwriting the oldest.
pub const RING_CAPACITY: usize = 1024;

/// A fixed-size, copyable string for event payloads (site names, query
/// labels). Longer strings are truncated at a UTF-8 boundary.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Label {
    len: u8,
    bytes: [u8; 15],
}

impl Label {
    /// The empty label.
    pub const EMPTY: Label = Label {
        len: 0,
        bytes: [0; 15],
    };

    /// Builds a label from up to 15 bytes of `s` (truncating at a character
    /// boundary).
    pub fn new(s: &str) -> Label {
        let mut n = s.len().min(15);
        while !s.is_char_boundary(n) {
            n -= 1;
        }
        let mut bytes = [0u8; 15];
        bytes[..n].copy_from_slice(&s.as_bytes()[..n]);
        Label {
            len: n as u8,
            bytes,
        }
    }

    /// The label's text.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.bytes[..self.len as usize]).unwrap_or("")
    }

    /// Packs the label into two words for ring storage.
    fn pack(&self) -> (u64, u64) {
        let mut raw = [0u8; 16];
        raw[0] = self.len;
        raw[1..16].copy_from_slice(&self.bytes);
        (
            u64::from_le_bytes(raw[0..8].try_into().unwrap()),
            u64::from_le_bytes(raw[8..16].try_into().unwrap()),
        )
    }

    fn unpack(a: u64, b: u64) -> Label {
        let mut raw = [0u8; 16];
        raw[0..8].copy_from_slice(&a.to_le_bytes());
        raw[8..16].copy_from_slice(&b.to_le_bytes());
        let mut bytes = [0u8; 15];
        bytes.copy_from_slice(&raw[1..16]);
        Label {
            len: raw[0].min(15),
            bytes,
        }
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Label {
        Label::new(s)
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::fmt::Debug for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

/// The typed event taxonomy (DESIGN.md §10). All variants are POD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A stop-the-world GC pause is starting (`managed-heap` collector).
    GcPauseBegin {
        /// True for a major (full-heap) cycle.
        major: bool,
    },
    /// A stop-the-world GC pause ended.
    GcPauseEnd {
        /// True for a major (full-heap) cycle.
        major: bool,
        /// Pause duration in nanoseconds.
        nanos: u64,
        /// Objects traced during the pause.
        traced: u64,
        /// Objects swept (0 for non-final incremental slices).
        swept: u64,
    },
    /// The global epoch advanced (§3.4).
    EpochAdvance {
        /// The new global epoch.
        epoch: u64,
    },
    /// A compaction pass selected its source candidates (§5.2 select).
    CompactionSelect {
        /// Memory-context id running the pass.
        context: u64,
        /// Low-occupancy blocks chosen as relocation sources.
        candidates: u64,
    },
    /// A compaction pass finished its moving phase (§5.1 relocate).
    CompactionRelocate {
        /// Memory-context id running the pass.
        context: u64,
        /// Objects moved to destination blocks.
        moved: u64,
        /// Relocations bailed out by readers (§5.1 case b).
        bailed: u64,
        /// Moving-phase duration in nanoseconds.
        nanos: u64,
    },
    /// A compaction pass retired its emptied source blocks (§5.2 retire).
    CompactionRetire {
        /// Memory-context id running the pass.
        context: u64,
        /// Fully-emptied source blocks retired to the graveyard path.
        retired: u64,
    },
    /// One object was relocated (by the compaction thread or a helping
    /// reader, §5.1 case c).
    ObjectRelocated {
        /// Source slot within the source block.
        src_slot: u64,
        /// Destination slot within the group's destination block.
        dest_slot: u64,
    },
    /// A reader bailed a scheduled relocation out (§5.1 case b).
    RelocationBailed {
        /// Source slot whose move was cancelled.
        src_slot: u64,
    },
    /// One rung of the allocation recovery ladder ran under memory pressure.
    RecoveryStep {
        /// Retry attempt number (1-based).
        attempt: u64,
        /// Graveyard blocks freed by this rung.
        freed_blocks: u64,
        /// Whether the rung forced an emergency epoch advance.
        advanced: bool,
    },
    /// A seeded failpoint fired ([`FaultInjector`](../../smc_memory/fault)).
    FailpointTrip {
        /// Site name (e.g. `block-alloc`, `relocation`).
        site: Label,
    },
    /// A parallel-scan worker claimed a morsel.
    MorselDispatch {
        /// Worker index within its pool.
        worker: u64,
        /// Morsel index within the scan's snapshot.
        morsel: u64,
    },
    /// A worker pool finished broadcasting one job to all workers.
    PoolBroadcast {
        /// Worker count.
        threads: u64,
        /// Wall time of the broadcast in nanoseconds.
        nanos: u64,
    },
    /// A traced span (e.g. one TPC-H query execution) completed.
    QuerySpan {
        /// Span label (e.g. `smc.q1`).
        label: Label,
        /// Span duration in nanoseconds.
        nanos: u64,
    },
    /// The maintenance coordinator dispatched a compaction pass.
    MaintPassStart {
        /// Memory-context id the pass targets.
        context: u64,
        /// Why the pass was planned (e.g. `frag`, `limbo`, `churn`, `nudge`).
        reason: Label,
    },
    /// A coordinator-driven compaction pass finished.
    MaintPassEnd {
        /// Memory-context id the pass targeted.
        context: u64,
        /// Objects moved by the pass.
        moved: u64,
        /// Relocations rolled back through the bail path.
        bailed: u64,
        /// Outcome class (`done`, `retry`, `cancel`, `abort`). Must fit in
        /// 7 bytes: the record packs context/moved/bailed plus the label's
        /// first word, so only short tokens survive encoding.
        outcome: Label,
    },
    /// The coordinator deferred a due pass because the foreground scan SLO
    /// is breached (back-pressure).
    MaintDeferred {
        /// Memory-context id whose pass was deferred.
        context: u64,
        /// Observed foreground p99 scan latency in nanoseconds.
        p99_ns: u64,
        /// The configured SLO ceiling in nanoseconds.
        slo_ns: u64,
    },
    /// The coordinator's SLO state flipped (breached or recovered).
    MaintSloState {
        /// True when entering the breached (back-pressure) state.
        breached: bool,
        /// Observed foreground p99 scan latency in nanoseconds.
        p99_ns: u64,
    },
    /// A block was evicted to the page store (the spill rung of the OOM
    /// ladder; persistence tier).
    BlockSpilled {
        /// Memory-context id that spilled the block.
        context: u64,
        /// Id of the spilled block.
        block_id: u64,
    },
    /// A spilled page was brought back to residency (into a fresh block).
    BlockFaulted {
        /// Memory-context id that faulted the page in.
        context: u64,
        /// Id of the originally-spilled block.
        block_id: u64,
        /// Fault-in duration in nanoseconds (store read through repoint).
        nanos: u64,
    },
    /// A crash-consistent snapshot generation was published (`smc-persist`).
    SnapshotWritten {
        /// Memory-context id that was snapshotted.
        context: u64,
        /// Pages written to the generation's page file.
        pages: u64,
        /// Total bytes written (pages plus manifest).
        bytes: u64,
        /// Snapshot duration in nanoseconds (walk through rename).
        nanos: u64,
    },
    /// A context was rebuilt from a snapshot directory (`smc-persist`).
    RecoveryLoaded {
        /// Memory-context id of the rebuilt context.
        context: u64,
        /// Pages read and verified.
        pages: u64,
        /// Objects re-inserted.
        objects: u64,
        /// Recovery duration in nanoseconds (read through verify).
        nanos: u64,
    },
    /// One stage of a traced request finished on some thread (conn read,
    /// ring wait, shard execution, exec-worker slice). The Chrome exporter
    /// renders these as complete (`X`) spans named `req.<stage>` carrying
    /// the request id, so one request's flow is linkable across `tid`
    /// tracks ([`RequestId`], DESIGN.md §17).
    ReqStage {
        /// The originating [`RequestId`] (non-zero).
        req: u64,
        /// Stage name (`conn`, `ring`, `shard`, `exec`). Must fit in
        /// 7 bytes: the record packs the id, the duration and the label's
        /// first word, so only short stage tokens survive encoding.
        stage: Label,
        /// Stage duration in nanoseconds.
        nanos: u64,
    },
}

const K_GC_BEGIN: u64 = 1;
const K_GC_END: u64 = 2;
const K_EPOCH: u64 = 3;
const K_SELECT: u64 = 4;
const K_RELOCATE: u64 = 5;
const K_RETIRE: u64 = 6;
const K_OBJ_MOVED: u64 = 7;
const K_OBJ_BAILED: u64 = 8;
const K_RECOVERY: u64 = 9;
const K_FAILPOINT: u64 = 10;
const K_MORSEL: u64 = 11;
const K_BROADCAST: u64 = 12;
const K_SPAN: u64 = 13;
const K_MAINT_START: u64 = 14;
const K_MAINT_END: u64 = 15;
const K_MAINT_DEFER: u64 = 16;
const K_MAINT_SLO: u64 = 17;
const K_SPILL: u64 = 18;
const K_FAULT_IN: u64 = 19;
const K_SNAP_WRITE: u64 = 20;
const K_RECOVER: u64 = 21;
const K_REQ_STAGE: u64 = 22;

impl Event {
    /// Short kind name, stable for log processing.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::GcPauseBegin { .. } => "gc-pause-begin",
            Event::GcPauseEnd { .. } => "gc-pause-end",
            Event::EpochAdvance { .. } => "epoch-advance",
            Event::CompactionSelect { .. } => "compaction-select",
            Event::CompactionRelocate { .. } => "compaction-relocate",
            Event::CompactionRetire { .. } => "compaction-retire",
            Event::ObjectRelocated { .. } => "object-relocated",
            Event::RelocationBailed { .. } => "relocation-bailed",
            Event::RecoveryStep { .. } => "recovery-step",
            Event::FailpointTrip { .. } => "failpoint-trip",
            Event::MorselDispatch { .. } => "morsel-dispatch",
            Event::PoolBroadcast { .. } => "pool-broadcast",
            Event::QuerySpan { .. } => "query-span",
            Event::MaintPassStart { .. } => "maint-pass-start",
            Event::MaintPassEnd { .. } => "maint-pass-end",
            Event::MaintDeferred { .. } => "maint-deferred",
            Event::MaintSloState { .. } => "maint-slo-state",
            Event::BlockSpilled { .. } => "block-spilled",
            Event::BlockFaulted { .. } => "block-faulted",
            Event::SnapshotWritten { .. } => "snapshot-written",
            Event::RecoveryLoaded { .. } => "recovery-loaded",
            Event::ReqStage { .. } => "req-stage",
        }
    }

    pub(crate) fn encode(&self) -> (u64, [u64; 4]) {
        match *self {
            Event::GcPauseBegin { major } => (K_GC_BEGIN, [major as u64, 0, 0, 0]),
            Event::GcPauseEnd {
                major,
                nanos,
                traced,
                swept,
            } => (K_GC_END, [major as u64, nanos, traced, swept]),
            Event::EpochAdvance { epoch } => (K_EPOCH, [epoch, 0, 0, 0]),
            Event::CompactionSelect {
                context,
                candidates,
            } => (K_SELECT, [context, candidates, 0, 0]),
            Event::CompactionRelocate {
                context,
                moved,
                bailed,
                nanos,
            } => (K_RELOCATE, [context, moved, bailed, nanos]),
            Event::CompactionRetire { context, retired } => (K_RETIRE, [context, retired, 0, 0]),
            Event::ObjectRelocated {
                src_slot,
                dest_slot,
            } => (K_OBJ_MOVED, [src_slot, dest_slot, 0, 0]),
            Event::RelocationBailed { src_slot } => (K_OBJ_BAILED, [src_slot, 0, 0, 0]),
            Event::RecoveryStep {
                attempt,
                freed_blocks,
                advanced,
            } => (K_RECOVERY, [attempt, freed_blocks, advanced as u64, 0]),
            Event::FailpointTrip { site } => {
                let (a, b) = site.pack();
                (K_FAILPOINT, [a, b, 0, 0])
            }
            Event::MorselDispatch { worker, morsel } => (K_MORSEL, [worker, morsel, 0, 0]),
            Event::PoolBroadcast { threads, nanos } => (K_BROADCAST, [threads, nanos, 0, 0]),
            Event::QuerySpan { label, nanos } => {
                let (a, b) = label.pack();
                (K_SPAN, [a, b, nanos, 0])
            }
            Event::MaintPassStart { context, reason } => {
                let (a, b) = reason.pack();
                (K_MAINT_START, [context, a, b, 0])
            }
            Event::MaintPassEnd {
                context,
                moved,
                bailed,
                outcome,
            } => {
                // Four payload words must carry context/moved/bailed plus the
                // outcome, so only the label's first packed word (length +
                // 7 bytes) is stored — enough for every outcome token.
                let (a, b) = outcome.pack();
                debug_assert_eq!(b, 0, "outcome label must fit 7 bytes");
                (K_MAINT_END, [context, moved, bailed, a])
            }
            Event::MaintDeferred {
                context,
                p99_ns,
                slo_ns,
            } => (K_MAINT_DEFER, [context, p99_ns, slo_ns, 0]),
            Event::MaintSloState { breached, p99_ns } => {
                (K_MAINT_SLO, [breached as u64, p99_ns, 0, 0])
            }
            Event::BlockSpilled { context, block_id } => (K_SPILL, [context, block_id, 0, 0]),
            Event::BlockFaulted {
                context,
                block_id,
                nanos,
            } => (K_FAULT_IN, [context, block_id, nanos, 0]),
            Event::SnapshotWritten {
                context,
                pages,
                bytes,
                nanos,
            } => (K_SNAP_WRITE, [context, pages, bytes, nanos]),
            Event::RecoveryLoaded {
                context,
                pages,
                objects,
                nanos,
            } => (K_RECOVER, [context, pages, objects, nanos]),
            Event::ReqStage { req, stage, nanos } => {
                let (a, b) = stage.pack();
                debug_assert_eq!(b, 0, "stage label must fit 7 bytes");
                (K_REQ_STAGE, [req, a, nanos, 0])
            }
        }
    }

    /// Defensive inverse of `encode`: a torn or unknown record decodes to
    /// `None` and is skipped by [`snapshot`].
    pub(crate) fn decode(kind: u64, p: [u64; 4]) -> Option<Event> {
        Some(match kind {
            K_GC_BEGIN => Event::GcPauseBegin { major: p[0] != 0 },
            K_GC_END => Event::GcPauseEnd {
                major: p[0] != 0,
                nanos: p[1],
                traced: p[2],
                swept: p[3],
            },
            K_EPOCH => Event::EpochAdvance { epoch: p[0] },
            K_SELECT => Event::CompactionSelect {
                context: p[0],
                candidates: p[1],
            },
            K_RELOCATE => Event::CompactionRelocate {
                context: p[0],
                moved: p[1],
                bailed: p[2],
                nanos: p[3],
            },
            K_RETIRE => Event::CompactionRetire {
                context: p[0],
                retired: p[1],
            },
            K_OBJ_MOVED => Event::ObjectRelocated {
                src_slot: p[0],
                dest_slot: p[1],
            },
            K_OBJ_BAILED => Event::RelocationBailed { src_slot: p[0] },
            K_RECOVERY => Event::RecoveryStep {
                attempt: p[0],
                freed_blocks: p[1],
                advanced: p[2] != 0,
            },
            K_FAILPOINT => Event::FailpointTrip {
                site: Label::unpack(p[0], p[1]),
            },
            K_MORSEL => Event::MorselDispatch {
                worker: p[0],
                morsel: p[1],
            },
            K_BROADCAST => Event::PoolBroadcast {
                threads: p[0],
                nanos: p[1],
            },
            K_SPAN => Event::QuerySpan {
                label: Label::unpack(p[0], p[1]),
                nanos: p[2],
            },
            K_MAINT_START => Event::MaintPassStart {
                context: p[0],
                reason: Label::unpack(p[1], p[2]),
            },
            K_MAINT_END => Event::MaintPassEnd {
                context: p[0],
                moved: p[1],
                bailed: p[2],
                outcome: Label::unpack(p[3], 0),
            },
            K_MAINT_DEFER => Event::MaintDeferred {
                context: p[0],
                p99_ns: p[1],
                slo_ns: p[2],
            },
            K_MAINT_SLO => Event::MaintSloState {
                breached: p[0] != 0,
                p99_ns: p[1],
            },
            K_SPILL => Event::BlockSpilled {
                context: p[0],
                block_id: p[1],
            },
            K_FAULT_IN => Event::BlockFaulted {
                context: p[0],
                block_id: p[1],
                nanos: p[2],
            },
            K_SNAP_WRITE => Event::SnapshotWritten {
                context: p[0],
                pages: p[1],
                bytes: p[2],
                nanos: p[3],
            },
            K_RECOVER => Event::RecoveryLoaded {
                context: p[0],
                pages: p[1],
                objects: p[2],
                nanos: p[3],
            },
            K_REQ_STAGE => Event::ReqStage {
                req: p[0],
                stage: Label::unpack(p[1], 0),
                nanos: p[2],
            },
            _ => return None,
        })
    }
}

/// One event as observed by [`snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracedEvent {
    /// Global sequence number: a total order across all threads.
    pub seq: u64,
    /// Emitting thread's tracer id (dense, per-process).
    pub thread: u64,
    /// Nanoseconds since the tracer's time origin (first enable/emission).
    pub nanos: u64,
    /// The event payload.
    pub event: Event,
}

// Ring slot: a seqlock-tagged record of 6 atomic words. `tag == 0` means
// empty or mid-write; `tag == logical_position + 1` means the words hold the
// complete record for that position. All accesses are atomic (no UB); a
// reader validating the tag before and after its word reads either sees a
// consistent record or skips the slot.
struct Slot {
    tag: AtomicU64,
    words: [AtomicU64; 6], // kind, seq, nanos, p0..p3 packed as [kind|…]
    extra: [AtomicU64; 1],
}

impl Slot {
    const fn new() -> Slot {
        Slot {
            tag: AtomicU64::new(0),
            words: [const { AtomicU64::new(0) }; 6],
            extra: [const { AtomicU64::new(0) }; 1],
        }
    }
}

struct Ring {
    thread: u64,
    /// Next logical write position (monotonic; wraps modulo capacity).
    head: AtomicU64,
    /// Events overwritten by wraparound, counted explicitly at the moment
    /// [`Ring::push`] reuses a previously-published slot (so [`clear`] and
    /// future resizes cannot skew the accounting).
    dropped: AtomicU64,
    slots: Box<[Slot]>,
    /// Owning-thread flag so `clear` can tell live rings from dead ones.
    _private: UnsafeCell<()>,
}

// SAFETY: all shared state is atomic; the UnsafeCell is a never-accessed
// marker making the type !RefUnwindSafe-irrelevant. Slots follow the
// seqlock protocol documented on `Slot`.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    fn new(thread: u64) -> Ring {
        Ring {
            thread,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..RING_CAPACITY).map(|_| Slot::new()).collect(),
            _private: UnsafeCell::new(()),
        }
    }

    /// Single-writer append (owning thread only).
    fn push(&self, seq: u64, nanos: u64, event: Event) {
        let pos = self.head.load(Ordering::Relaxed);
        if pos >= RING_CAPACITY as u64 {
            // This write reuses a slot that held a published record: the
            // ring has wrapped and the oldest event is being overwritten.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let slot = &self.slots[(pos as usize) % RING_CAPACITY];
        let (kind, p) = event.encode();
        // Invalidate, publish the invalidation before any new word, write
        // the record, then publish the new tag after every word.
        slot.tag.store(0, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        slot.words[0].store(kind, Ordering::Relaxed);
        slot.words[1].store(seq, Ordering::Relaxed);
        slot.words[2].store(nanos, Ordering::Relaxed);
        slot.words[3].store(p[0], Ordering::Relaxed);
        slot.words[4].store(p[1], Ordering::Relaxed);
        slot.words[5].store(p[2], Ordering::Relaxed);
        slot.extra[0].store(p[3], Ordering::Relaxed);
        slot.tag.store(pos + 1, Ordering::Release);
        self.head.store(pos + 1, Ordering::Release);
    }

    /// Seqlock read of every currently-consistent slot.
    fn read_all(&self, out: &mut Vec<TracedEvent>) {
        for slot in self.slots.iter() {
            let t1 = slot.tag.load(Ordering::Acquire);
            if t1 == 0 {
                continue;
            }
            let kind = slot.words[0].load(Ordering::Relaxed);
            let seq = slot.words[1].load(Ordering::Relaxed);
            let nanos = slot.words[2].load(Ordering::Relaxed);
            let p = [
                slot.words[3].load(Ordering::Relaxed),
                slot.words[4].load(Ordering::Relaxed),
                slot.words[5].load(Ordering::Relaxed),
                slot.extra[0].load(Ordering::Relaxed),
            ];
            fence(Ordering::SeqCst);
            if slot.tag.load(Ordering::Relaxed) != t1 {
                continue; // overwritten mid-read
            }
            if let Some(event) = Event::decode(kind, p) {
                out.push(TracedEvent {
                    seq,
                    thread: self.thread,
                    nanos,
                    event,
                });
            }
        }
    }
}

/// Tracer mode bit: per-thread ring recording ([`enable`]/[`disable`]).
const MODE_RINGS: u8 = 1 << 0;
/// Tracer mode bit: the global flight recorder ([`crate::flight::enable`]).
const MODE_FLIGHT: u8 = 1 << 1;

/// Which sinks are live. Zero means every [`emit`] is a single relaxed load
/// plus one predictable branch — the ≤ 2 ns/op budget the overhead test
/// holds covers both sinks being off.
static MODE: AtomicU8 = AtomicU8::new(0);
static SEQ: AtomicU64 = AtomicU64::new(0);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

thread_local! {
    static LOCAL: Arc<Ring> = {
        let ring = Arc::new(Ring::new(NEXT_THREAD.fetch_add(1, Ordering::Relaxed)));
        registry().lock().unwrap_or_else(|e| e.into_inner()).push(ring.clone());
        ring
    };
}

/// Turns ring tracing on. Emissions before this call were dropped at zero
/// cost (unless the [flight recorder](crate::flight) was already live).
pub fn enable() {
    origin(); // pin the time origin no later than the first enablement
    MODE.fetch_or(MODE_RINGS, Ordering::Relaxed);
}

/// Turns ring tracing off; with the flight recorder also off, [`emit`]
/// reverts to the ≤ 2 ns no-op path.
pub fn disable() {
    MODE.fetch_and(!MODE_RINGS, Ordering::Relaxed);
}

/// True while ring tracing is on (the flight recorder does not count: it is
/// a forensic sink, not the export path `snapshot` serves).
#[inline]
pub fn is_enabled() -> bool {
    MODE.load(Ordering::Relaxed) & MODE_RINGS != 0
}

/// Flips the flight-recorder mode bit (called by [`crate::flight`] only;
/// the recorder allocates its ring before setting the bit).
pub(crate) fn set_flight_mode(on: bool) {
    origin();
    if on {
        MODE.fetch_or(MODE_FLIGHT, Ordering::Relaxed);
    } else {
        MODE.fetch_and(!MODE_FLIGHT, Ordering::Relaxed);
    }
    crate::flight::note_mode(on);
}

/// Emits one event. When both sinks are disabled this is one relaxed load
/// and a branch — no allocation, no clock read, no TLS access.
#[inline]
pub fn emit(event: Event) {
    let mode = MODE.load(Ordering::Relaxed);
    if mode == 0 {
        return;
    }
    emit_enabled(mode, event);
}

#[cold]
fn emit_enabled(mode: u8, event: Event) {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let nanos = origin().elapsed().as_nanos() as u64;
    // `try_with`: emissions during TLS teardown are silently dropped.
    let _ = LOCAL.try_with(|ring| {
        if mode & MODE_RINGS != 0 {
            ring.push(seq, nanos, event);
        }
        if mode & MODE_FLIGHT != 0 {
            crate::flight::record(ring.thread, seq, nanos, event);
        }
    });
}

/// Collects every currently-readable event from every thread's ring,
/// sorted by global sequence number. Non-destructive; slots being
/// overwritten concurrently are skipped.
pub fn snapshot() -> Vec<TracedEvent> {
    let rings: Vec<Arc<Ring>> = registry().lock().unwrap_or_else(|e| e.into_inner()).clone();
    let mut out = Vec::new();
    for ring in rings {
        ring.read_all(&mut out);
    }
    out.sort_by_key(|t| t.seq);
    out
}

/// Events overwritten by ring wraparound since process start, summed over
/// every thread's per-ring `dropped` counter (each counter increments at the
/// instant a wrap reuses a published slot). A report that claims zero events
/// while this is non-zero lost its whole story to overwrites — the bench
/// gate treats that combination as a failure.
pub fn dropped() -> u64 {
    registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|r| r.dropped.load(Ordering::Relaxed))
        .sum()
}

/// Per-thread view of [`dropped`]: `(tracer thread id, events overwritten)`
/// for every ring that has dropped at least one event. `smc-top` surfaces
/// this so a saturated producer thread is identifiable.
pub fn dropped_by_thread() -> Vec<(u64, u64)> {
    registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .filter_map(|r| {
            let d = r.dropped.load(Ordering::Relaxed);
            (d > 0).then_some((r.thread, d))
        })
        .collect()
}

/// Empties every ring. Intended for quiescent points (between benchmark
/// phases); events being written concurrently may survive the clear.
pub fn clear() {
    for ring in registry().lock().unwrap_or_else(|e| e.into_inner()).iter() {
        for slot in ring.slots.iter() {
            slot.tag.store(0, Ordering::Release);
        }
    }
}

/// The identity of one in-flight request, minted by the client side of the
/// `smc-serve` wire protocol and carried across threads (conn → SPSC ring →
/// shard → exec workers) so every [`Event::ReqStage`] on the request's path
/// names the same id. Zero is reserved as "untraced", so a `RequestId` is
/// always non-zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId(u64);

impl RequestId {
    /// Wraps a raw wire id; `None` for the reserved untraced value `0`.
    pub fn new(raw: u64) -> Option<RequestId> {
        (raw != 0).then_some(RequestId(raw))
    }

    /// The raw non-zero id.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

thread_local! {
    /// The request the current thread is executing on behalf of (0 = none).
    static CURRENT_REQ: Cell<u64> = const { Cell::new(0) };
}

/// The request id the current thread is working under, if any. Worker pools
/// capture this before fanning out and re-enter it per worker with
/// [`RequestScope::enter`], so morsel-level stages inherit the id across the
/// broadcast boundary.
pub fn current_request() -> Option<RequestId> {
    CURRENT_REQ.with(|c| RequestId::new(c.get()))
}

/// RAII guard marking the current thread as executing `id`. Restores the
/// previous id (scopes nest) on drop. Entering a scope costs one TLS store
/// and emits nothing on its own — stages are emitted explicitly.
#[derive(Debug)]
pub struct RequestScope {
    prev: u64,
}

impl RequestScope {
    /// Enters `id` on the current thread until the guard drops.
    pub fn enter(id: RequestId) -> RequestScope {
        let prev = CURRENT_REQ.with(|c| c.replace(id.get()));
        RequestScope { prev }
    }
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        let prev = self.prev;
        CURRENT_REQ.with(|c| c.set(prev));
    }
}

/// Emits a [`ReqStage`](Event::ReqStage) span for `id`. `nanos` is the
/// stage's duration; the event's timestamp marks the stage's end, so the
/// Chrome exporter reconstructs the start as `ts - nanos`.
pub fn emit_stage(id: RequestId, stage: &str, nanos: u64) {
    emit(Event::ReqStage {
        req: id.get(),
        stage: Label::new(stage),
        nanos,
    });
}

/// An RAII span: measures its own lifetime, emits a
/// [`QuerySpan`](Event::QuerySpan) on drop, and optionally records the
/// duration into a [`Histogram`].
///
/// ```
/// use smc_obs::hist::Histogram;
/// use smc_obs::trace::Span;
///
/// static LATENCY: Histogram = Histogram::new();
/// {
///     let _span = Span::with_histogram("demo.q1", &LATENCY);
///     // ... the work being measured ...
/// }
/// assert_eq!(LATENCY.count(), 1);
/// ```
pub struct Span<'a> {
    label: Label,
    hist: Option<&'a Histogram>,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Starts a span that only emits a trace event.
    pub fn new(label: impl Into<Label>) -> Span<'static> {
        Span {
            label: label.into(),
            hist: None,
            start: Instant::now(),
        }
    }

    /// Starts a span that also records its duration into `hist`.
    pub fn with_histogram(label: impl Into<Label>, hist: &'a Histogram) -> Span<'a> {
        Span {
            label: label.into(),
            hist: Some(hist),
            start: Instant::now(),
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if let Some(hist) = self.hist {
            hist.record(nanos);
        }
        emit(Event::QuerySpan {
            label: self.label,
            nanos,
        });
    }
}

/// Tracer state is process-global; tests (here and in [`crate::flight`])
/// that toggle it serialize on this lock.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    use super::test_lock as lock;

    #[test]
    fn label_round_trip_and_truncation() {
        let l = Label::new("block-alloc");
        assert_eq!(l.as_str(), "block-alloc");
        let (a, b) = l.pack();
        assert_eq!(Label::unpack(a, b), l);
        let long = Label::new("a-very-long-label-name");
        assert_eq!(long.as_str().len(), 15);
        let multi = Label::new("éééééééé"); // 16 bytes of two-byte chars
        assert_eq!(multi.as_str(), "ééééééé");
    }

    #[test]
    fn disabled_tracer_emits_nothing() {
        let _g = lock();
        disable();
        clear();
        for i in 0..100 {
            emit(Event::EpochAdvance { epoch: i });
        }
        assert!(
            !snapshot()
                .iter()
                .any(|t| matches!(t.event, Event::EpochAdvance { .. })),
            "disabled emit must not record"
        );
    }

    #[test]
    fn enabled_tracer_records_in_order() {
        let _g = lock();
        enable();
        clear();
        for i in 0..10u64 {
            emit(Event::MorselDispatch {
                worker: 42,
                morsel: i,
            });
        }
        let seen: Vec<u64> = snapshot()
            .iter()
            .filter_map(|t| match t.event {
                Event::MorselDispatch { worker: 42, morsel } => Some(morsel),
                _ => None,
            })
            .collect();
        disable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let _g = lock();
        enable();
        clear();
        let dropped_before = dropped();
        let total = RING_CAPACITY as u64 + 37;
        for i in 0..total {
            emit(Event::MorselDispatch {
                worker: 777,
                morsel: i,
            });
        }
        let seen: Vec<u64> = snapshot()
            .iter()
            .filter_map(|t| match t.event {
                Event::MorselDispatch {
                    worker: 777,
                    morsel,
                } => Some(morsel),
                _ => None,
            })
            .collect();
        disable();
        // The survivors are exactly the newest RING_CAPACITY events, still
        // in order; the overwritten prefix is accounted in dropped().
        assert_eq!(seen.len(), RING_CAPACITY);
        assert_eq!(seen[0], 37);
        assert_eq!(*seen.last().unwrap(), total - 1);
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
        assert!(dropped() >= dropped_before + 37);
    }

    #[test]
    fn snapshot_sees_other_threads() {
        let _g = lock();
        enable();
        clear();
        let t = std::thread::spawn(|| {
            emit(Event::RecoveryStep {
                attempt: 9,
                freed_blocks: 3,
                advanced: true,
            });
        });
        t.join().unwrap();
        let found = snapshot().iter().any(|t| {
            matches!(
                t.event,
                Event::RecoveryStep {
                    attempt: 9,
                    freed_blocks: 3,
                    advanced: true
                }
            )
        });
        disable();
        assert!(found, "event from a dead thread must survive in its ring");
    }

    #[test]
    fn all_event_kinds_round_trip() {
        let events = [
            Event::GcPauseBegin { major: true },
            Event::GcPauseEnd {
                major: false,
                nanos: 1,
                traced: 2,
                swept: 3,
            },
            Event::EpochAdvance { epoch: 4 },
            Event::CompactionSelect {
                context: 5,
                candidates: 6,
            },
            Event::CompactionRelocate {
                context: 7,
                moved: 8,
                bailed: 9,
                nanos: 10,
            },
            Event::CompactionRetire {
                context: 11,
                retired: 12,
            },
            Event::ObjectRelocated {
                src_slot: 13,
                dest_slot: 14,
            },
            Event::RelocationBailed { src_slot: 15 },
            Event::RecoveryStep {
                attempt: 16,
                freed_blocks: 17,
                advanced: false,
            },
            Event::FailpointTrip {
                site: Label::new("relocation"),
            },
            Event::MorselDispatch {
                worker: 18,
                morsel: 19,
            },
            Event::PoolBroadcast {
                threads: 20,
                nanos: 21,
            },
            Event::QuerySpan {
                label: Label::new("smc.q1"),
                nanos: 22,
            },
            Event::MaintPassStart {
                context: 23,
                reason: Label::new("frag"),
            },
            Event::MaintPassEnd {
                context: 24,
                moved: 25,
                bailed: 26,
                outcome: Label::new("cancel"),
            },
            Event::MaintDeferred {
                context: 27,
                p99_ns: 28,
                slo_ns: 29,
            },
            Event::MaintSloState {
                breached: true,
                p99_ns: 30,
            },
            Event::BlockSpilled {
                context: 31,
                block_id: 32,
            },
            Event::BlockFaulted {
                context: 33,
                block_id: 34,
                nanos: 35,
            },
            Event::SnapshotWritten {
                context: 36,
                pages: 37,
                bytes: 38,
                nanos: 39,
            },
            Event::RecoveryLoaded {
                context: 40,
                pages: 41,
                objects: 42,
                nanos: 43,
            },
            Event::ReqStage {
                req: 44,
                stage: Label::new("shard"),
                nanos: 45,
            },
        ];
        for e in events {
            let (kind, p) = e.encode();
            assert_eq!(Event::decode(kind, p), Some(e), "{}", e.kind());
            assert!(!e.kind().is_empty());
        }
        assert_eq!(Event::decode(999, [0; 4]), None);
    }

    #[test]
    fn span_emits_event_and_feeds_histogram() {
        let _g = lock();
        enable();
        clear();
        let hist = Histogram::new();
        {
            let _span = Span::with_histogram("test.span", &hist);
            std::hint::black_box(0);
        }
        let found = snapshot().iter().any(
            |t| matches!(t.event, Event::QuerySpan { label, .. } if label.as_str() == "test.span"),
        );
        disable();
        assert!(found);
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn request_scopes_nest_and_restore() {
        assert_eq!(current_request(), None);
        let outer = RequestId::new(7).unwrap();
        let inner = RequestId::new(9).unwrap();
        {
            let _o = RequestScope::enter(outer);
            assert_eq!(current_request(), Some(outer));
            {
                let _i = RequestScope::enter(inner);
                assert_eq!(current_request(), Some(inner));
            }
            assert_eq!(current_request(), Some(outer));
        }
        assert_eq!(current_request(), None);
        assert_eq!(RequestId::new(0), None, "zero is the untraced sentinel");
    }

    #[test]
    fn request_scope_does_not_leak_across_threads() {
        let _s = RequestScope::enter(RequestId::new(11).unwrap());
        let other = std::thread::spawn(current_request).join().unwrap();
        assert_eq!(other, None, "request context is thread-local");
    }

    #[test]
    fn emit_stage_records_the_request_id() {
        let _g = lock();
        enable();
        clear();
        let id = RequestId::new(0xdead_beef).unwrap();
        emit_stage(id, "conn", 1234);
        let found = snapshot().iter().any(|t| {
            matches!(
                t.event,
                Event::ReqStage { req, stage, nanos: 1234 }
                    if req == id.get() && stage.as_str() == "conn"
            )
        });
        disable();
        assert!(found);
    }
}
