//! # smc-obs — observability substrate for the self-managed-collections workspace
//!
//! The paper's argument (Nagel et al., EDBT 2017) rests on *measured*
//! runtime behaviour: GC pause distributions, reclamation cost, enumeration
//! throughput (§7, Figs 6–14). This crate is the measurement substrate the
//! rest of the workspace reports through. It has **zero external
//! dependencies** and three parts:
//!
//! - [`trace`] — a lock-free, thread-local structured event tracer with a
//!   typed taxonomy (GC pauses, epoch advances, the compaction-group
//!   select → relocate → retire lifecycle, recovery-ladder rungs, failpoint
//!   trips, morsel dispatch). Disabled by default; the disabled emit path
//!   is one relaxed load + branch (≤ 2 ns/op, asserted in
//!   `tests/overhead.rs`) and allocates nothing (`tests/no_alloc.rs`).
//! - [`hist`] — HDR-style log2-bucketed [`Histogram`]s: fixed-size atomic
//!   arrays, lock-free recording, mergeable across threads, with
//!   p50/p95/p99/max accessors and ≤ 1/16 relative quantile error.
//! - [`report`] — a dependency-free JSON emitter producing the
//!   `BENCH_fig<N>.json` files every `crates/bench` figure binary writes
//!   (schema documented in EXPERIMENTS.md).
//! - [`chrome`] — a Chrome `trace_event` exporter draining the [`trace`]
//!   rings into Perfetto-loadable JSON (spans from paired begin/end
//!   events, counter tracks, per-thread tracks), plus [`hist::Registry`]
//!   for merging thread-local histograms on demand.
//! - [`flight`] — an always-on flight recorder: a fixed-budget global ring
//!   of the most recent events, dumped to `SMC_FLIGHT_OUT` on panic, SLO
//!   breach, failed drain verify, or SIGUSR1 for crash forensics with zero
//!   steady-state allocation.
//!
//! [`trace`] also carries the request-causality layer: a [`RequestId`]
//! minted at the `smc-serve` wire boundary travels with the request across
//! threads (thread-local [`trace::RequestScope`]s), and every
//! [`Event::ReqStage`] emitted on the path renders
//! as a per-request `X` span in the Chrome export.
//!
//! Recording a latency distribution and reading its tail:
//!
//! ```
//! use smc_obs::Histogram;
//!
//! static LATENCY: Histogram = Histogram::new(); // const-constructible
//! for micros in [120u64, 450, 900, 15_000] {
//!     LATENCY.record(micros * 1_000); // nanoseconds
//! }
//! assert_eq!(LATENCY.count(), 4);
//! assert_eq!(LATENCY.max(), 15_000_000);
//! assert!(LATENCY.p99() >= 15_000_000 * 15 / 16); // ≤ 1/16 relative error
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_op_in_unsafe_fn)]

pub mod chrome;
pub mod flight;
pub mod hist;
pub mod report;
pub mod trace;

pub use chrome::ChromeTrace;
pub use hist::{Histogram, Registry, Summary};
pub use report::{JsonValue, Report, SeriesId};
pub use trace::{Event, Label, RequestId, RequestScope, Span, TracedEvent};
