//! Chrome `trace_event` export for the seqlock trace rings.
//!
//! [`ChromeTrace`] converts a [`trace::snapshot`] into the Chrome tracing
//! JSON object format (the `{"traceEvents": [...]}` envelope understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)): paired
//! begin/end events become `B`/`E` duration slices, events that carry their
//! own duration become `X` complete slices, epoch advances become a `C`
//! counter track, and everything else becomes a thread-scoped instant.
//! Each tracer thread maps to its own `tid` track (named via `M` metadata
//! records), timestamps are microseconds with sub-microsecond fractions so
//! nanosecond resolution survives, and the emitted array is sorted by
//! timestamp with `B` ordered before `E` on ties.
//!
//! ## Pairing discipline
//!
//! The rings overwrite their oldest records on wrap, so a `GcPauseEnd` can
//! survive while its `GcPauseBegin` was lost (and vice versa). The exporter
//! therefore re-balances while converting: a matched begin/end pair emits
//! `B` then `E` on the pair's track; an orphaned end synthesizes its `B`
//! from the duration the end event carries; an orphaned begin (a pause
//! still open at snapshot time) is dropped. The output always passes
//! `scripts/trace_gate.py`'s balance check, wrapped rings included.
//!
//! ```
//! use smc_obs::chrome::ChromeTrace;
//! use smc_obs::trace::{self, Event};
//!
//! trace::enable();
//! trace::emit(Event::EpochAdvance { epoch: 3 });
//! let export = ChromeTrace::from_ring_snapshot();
//! trace::disable();
//! assert!(export.to_json_string().contains("\"traceEvents\""));
//! ```

use std::io::Write;
use std::path::Path;

use crate::report::JsonValue;
use crate::trace::{self, Event, TracedEvent};

/// Synthetic process id used for every track (one process per export).
const PID: u64 = 1;

/// Sort rank at equal timestamps: `B` first so zero-length pairs still
/// nest, `E` last so a slice closes after the instants it covers.
fn phase_rank(ph: &str) -> u8 {
    match ph {
        "M" => 0,
        "B" => 1,
        "X" => 2,
        "i" => 3,
        "C" => 4,
        "E" => 5,
        _ => 6,
    }
}

/// One pending output record (pre-serialization, so the builder can sort).
struct Record {
    ts_nanos: u64,
    ph: &'static str,
    name: String,
    tid: u64,
    dur_nanos: Option<u64>,
    args: Vec<(String, JsonValue)>,
}

impl Record {
    fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::obj();
        obj.set("name", self.name.clone());
        obj.set("ph", self.ph);
        obj.set("ts", self.ts_nanos as f64 / 1000.0);
        if let Some(dur) = self.dur_nanos {
            obj.set("dur", dur as f64 / 1000.0);
        }
        obj.set("pid", PID);
        obj.set("tid", self.tid);
        if self.ph == "i" {
            obj.set("s", "t"); // thread-scoped instant
        }
        if !self.args.is_empty() {
            let mut args = JsonValue::obj();
            for (k, v) in &self.args {
                args.set(k, v.clone());
            }
            obj.set("args", args);
        }
        obj
    }
}

/// Builder for one Chrome tracing JSON document.
#[derive(Default)]
pub struct ChromeTrace {
    records: Vec<Record>,
    tids: Vec<u64>,
    /// Extra top-level document fields (e.g. the flight recorder's
    /// `flightTrigger`), appended after `displayTimeUnit`.
    top_level: Vec<(String, JsonValue)>,
}

impl Default for Record {
    fn default() -> Record {
        Record {
            ts_nanos: 0,
            ph: "i",
            name: String::new(),
            tid: 0,
            dur_nanos: None,
            args: Vec::new(),
        }
    }
}

impl ChromeTrace {
    /// An empty export.
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Drains the current [`trace::snapshot`] into a new export, itemizing
    /// any per-ring drop counts as metadata ([`note_dropped`](Self::note_dropped)).
    pub fn from_ring_snapshot() -> ChromeTrace {
        let mut out = ChromeTrace::new();
        out.add_events(&trace::snapshot());
        out.note_dropped(&trace::dropped_by_thread());
        out
    }

    /// Converts already-captured ring events (sorted by `seq`, as
    /// [`trace::snapshot`] returns them) into trace records.
    pub fn add_events(&mut self, events: &[TracedEvent]) {
        // Pending GcPauseBegin per tid (GC pauses never nest per thread;
        // keep a stack anyway so a torn ring cannot wedge the exporter).
        let mut open: Vec<(u64, u64)> = Vec::new(); // (tid, begin ts)
        for t in events {
            self.note_tid(t.thread);
            match t.event {
                Event::GcPauseBegin { .. } => open.push((t.thread, t.nanos)),
                Event::GcPauseEnd {
                    major,
                    nanos,
                    traced,
                    swept,
                } => {
                    let begin = match open.iter().rposition(|&(tid, _)| tid == t.thread) {
                        Some(i) => open.remove(i).1.min(t.nanos),
                        // Orphaned end: its begin was overwritten by ring
                        // wrap — synthesize it from the carried duration.
                        None => t.nanos.saturating_sub(nanos),
                    };
                    let name = if major {
                        "gc-pause-major"
                    } else {
                        "gc-pause-minor"
                    };
                    self.records.push(Record {
                        ts_nanos: begin,
                        ph: "B",
                        name: name.to_string(),
                        tid: t.thread,
                        ..Record::default()
                    });
                    self.records.push(Record {
                        ts_nanos: t.nanos.max(begin),
                        ph: "E",
                        name: name.to_string(),
                        tid: t.thread,
                        args: vec![
                            ("traced".to_string(), JsonValue::from(traced)),
                            ("swept".to_string(), JsonValue::from(swept)),
                        ],
                        ..Record::default()
                    });
                }
                Event::EpochAdvance { epoch } => self.records.push(Record {
                    ts_nanos: t.nanos,
                    ph: "C",
                    name: "epoch".to_string(),
                    tid: t.thread,
                    args: vec![("epoch".to_string(), JsonValue::from(epoch))],
                    ..Record::default()
                }),
                Event::QuerySpan { label, nanos } => {
                    self.push_complete(t, label.as_str().to_string(), nanos, Vec::new())
                }
                Event::ReqStage { req, stage, nanos } => self.push_complete(
                    t,
                    format!("req.{stage}"),
                    nanos,
                    vec![("req".to_string(), JsonValue::from(req))],
                ),
                Event::CompactionRelocate {
                    context,
                    moved,
                    bailed,
                    nanos,
                } => self.push_complete(
                    t,
                    "compaction-relocate".to_string(),
                    nanos,
                    vec![
                        ("context".to_string(), JsonValue::from(context)),
                        ("moved".to_string(), JsonValue::from(moved)),
                        ("bailed".to_string(), JsonValue::from(bailed)),
                    ],
                ),
                Event::PoolBroadcast { threads, nanos } => self.push_complete(
                    t,
                    "pool-broadcast".to_string(),
                    nanos,
                    vec![("threads".to_string(), JsonValue::from(threads))],
                ),
                other => {
                    let args = instant_args(&other);
                    self.records.push(Record {
                        ts_nanos: t.nanos,
                        ph: "i",
                        name: other.kind().to_string(),
                        tid: t.thread,
                        args,
                        ..Record::default()
                    });
                }
            }
        }
        // Orphaned begins (pauses still open at snapshot time) are dropped:
        // emitting an unmatched `B` would fail the balance gate.
    }

    /// Itemizes per-ring drop counts as `M` metadata records (one per
    /// producer thread that lost events to wraparound, named
    /// `trace_events_dropped` on that thread's `tid` track), so a drop
    /// storm names the saturated producer instead of hiding inside one
    /// aggregate counter. Pass [`trace::dropped_by_thread`].
    pub fn note_dropped(&mut self, per_ring: &[(u64, u64)]) {
        for &(tid, dropped) in per_ring {
            self.note_tid(tid);
            self.records.push(Record {
                ts_nanos: 0,
                ph: "M",
                name: "trace_events_dropped".to_string(),
                tid,
                args: vec![("dropped".to_string(), JsonValue::from(dropped))],
                ..Record::default()
            });
        }
    }

    /// Sets an extra top-level field on the exported document (e.g. the
    /// flight recorder's dump trigger). Perfetto ignores unknown top-level
    /// keys; the trace gate reads them.
    pub fn set_top_level(&mut self, key: &str, value: JsonValue) {
        if let Some(slot) = self.top_level.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.top_level.push((key.to_string(), value));
        }
    }

    /// Appends a counter sample (`ph: "C"`) on its own track — used by
    /// `smc-top` and the bench harness to chart heap-snapshot series
    /// (occupancy, live blocks, drops) alongside the ring events.
    pub fn counter(&mut self, ts_nanos: u64, name: &str, value: f64) {
        self.note_tid(0);
        self.records.push(Record {
            ts_nanos,
            ph: "C",
            name: name.to_string(),
            tid: 0,
            args: vec![("value".to_string(), JsonValue::from(value))],
            ..Record::default()
        });
    }

    /// Number of records staged for export (excluding thread metadata).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    fn note_tid(&mut self, tid: u64) {
        if !self.tids.contains(&tid) {
            self.tids.push(tid);
        }
    }

    fn push_complete(
        &mut self,
        t: &TracedEvent,
        name: String,
        dur: u64,
        args: Vec<(String, JsonValue)>,
    ) {
        self.records.push(Record {
            ts_nanos: t.nanos.saturating_sub(dur),
            ph: "X",
            name,
            tid: t.thread,
            dur_nanos: Some(dur),
            args,
        });
    }

    /// Serializes to the Chrome tracing JSON object format.
    pub fn to_json(&self) -> JsonValue {
        let mut events: Vec<JsonValue> = Vec::with_capacity(self.records.len() + self.tids.len());
        // Thread-name metadata first (ts 0, rank 0 keeps them leading).
        let mut tids = self.tids.clone();
        tids.sort_unstable();
        for tid in tids {
            let mut meta = JsonValue::obj();
            meta.set("name", "thread_name");
            meta.set("ph", "M");
            meta.set("pid", PID);
            meta.set("tid", tid);
            let mut args = JsonValue::obj();
            let label = if tid == 0 {
                "counters".to_string()
            } else {
                format!("tracer-{tid}")
            };
            args.set("name", label);
            meta.set("args", args);
            events.push(meta);
        }
        let mut order: Vec<usize> = (0..self.records.len()).collect();
        order.sort_by(|&a, &b| {
            let (ra, rb) = (&self.records[a], &self.records[b]);
            ra.ts_nanos
                .cmp(&rb.ts_nanos)
                .then_with(|| phase_rank(ra.ph).cmp(&phase_rank(rb.ph)))
                .then_with(|| a.cmp(&b))
        });
        for i in order {
            events.push(self.records[i].to_json());
        }
        let mut doc = JsonValue::obj();
        doc.set("traceEvents", JsonValue::Arr(events));
        doc.set("displayTimeUnit", "ms");
        for (k, v) in &self.top_level {
            doc.set(k, v.clone());
        }
        doc
    }

    /// Serializes to a JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json()
    }

    /// Writes the JSON document to `w`.
    pub fn write_to(&self, w: &mut dyn Write) -> std::io::Result<()> {
        w.write_all(self.to_json_string().as_bytes())
    }

    /// Writes the JSON document to `path`, creating parent directories.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json_string())
    }
}

/// Argument payload for the instant-event fallback arm.
fn instant_args(e: &Event) -> Vec<(String, JsonValue)> {
    let kv = |k: &str, v: u64| (k.to_string(), JsonValue::from(v));
    match *e {
        Event::CompactionSelect {
            context,
            candidates,
        } => vec![kv("context", context), kv("candidates", candidates)],
        Event::CompactionRetire { context, retired } => {
            vec![kv("context", context), kv("retired", retired)]
        }
        Event::ObjectRelocated {
            src_slot,
            dest_slot,
        } => vec![kv("src_slot", src_slot), kv("dest_slot", dest_slot)],
        Event::RelocationBailed { src_slot } => vec![kv("src_slot", src_slot)],
        Event::RecoveryStep {
            attempt,
            freed_blocks,
            advanced,
        } => vec![
            kv("attempt", attempt),
            kv("freed_blocks", freed_blocks),
            kv("advanced", advanced as u64),
        ],
        Event::FailpointTrip { site } => {
            vec![("site".to_string(), JsonValue::from(site.as_str()))]
        }
        Event::MorselDispatch { worker, morsel } => {
            vec![kv("worker", worker), kv("morsel", morsel)]
        }
        Event::BlockSpilled { context, block_id } => {
            vec![kv("context", context), kv("block_id", block_id)]
        }
        Event::BlockFaulted {
            context,
            block_id,
            nanos,
        } => vec![
            kv("context", context),
            kv("block_id", block_id),
            kv("nanos", nanos),
        ],
        Event::SnapshotWritten {
            context,
            pages,
            bytes,
            nanos,
        } => vec![
            kv("context", context),
            kv("pages", pages),
            kv("bytes", bytes),
            kv("nanos", nanos),
        ],
        Event::RecoveryLoaded {
            context,
            pages,
            objects,
            nanos,
        } => vec![
            kv("context", context),
            kv("pages", pages),
            kv("objects", objects),
            kv("nanos", nanos),
        ],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Label;

    fn ev(seq: u64, thread: u64, nanos: u64, event: Event) -> TracedEvent {
        TracedEvent {
            seq,
            thread,
            nanos,
            event,
        }
    }

    #[test]
    fn matched_pause_becomes_balanced_pair() {
        let mut t = ChromeTrace::new();
        t.add_events(&[
            ev(0, 7, 1_000, Event::GcPauseBegin { major: true }),
            ev(
                1,
                7,
                5_000,
                Event::GcPauseEnd {
                    major: true,
                    nanos: 4_000,
                    traced: 10,
                    swept: 3,
                },
            ),
        ]);
        let s = t.to_json_string();
        let b = s.find("\"ph\":\"B\"").expect("has B");
        let e = s.find("\"ph\":\"E\"").expect("has E");
        assert!(b < e, "B sorts before E");
        assert!(s.contains("gc-pause-major"));
    }

    #[test]
    fn orphaned_end_synthesizes_begin() {
        let mut t = ChromeTrace::new();
        t.add_events(&[ev(
            0,
            2,
            9_000,
            Event::GcPauseEnd {
                major: false,
                nanos: 2_500,
                traced: 1,
                swept: 1,
            },
        )]);
        let s = t.to_json_string();
        assert_eq!(s.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(s.matches("\"ph\":\"E\"").count(), 1);
        assert!(s.contains("\"ts\":6.5"), "begin = end - dur: {s}");
    }

    #[test]
    fn orphaned_begin_is_dropped() {
        let mut t = ChromeTrace::new();
        t.add_events(&[ev(0, 2, 100, Event::GcPauseBegin { major: false })]);
        let s = t.to_json_string();
        assert!(!s.contains("\"ph\":\"B\""), "unmatched B suppressed: {s}");
    }

    #[test]
    fn spans_and_counters_map_to_x_and_c() {
        let mut t = ChromeTrace::new();
        t.add_events(&[
            ev(0, 1, 4_000, Event::EpochAdvance { epoch: 2 }),
            ev(
                1,
                1,
                9_000,
                Event::QuerySpan {
                    label: Label::new("smc.q1"),
                    nanos: 3_000,
                },
            ),
        ]);
        t.counter(10_000, "occupancy", 0.75);
        let s = t.to_json_string();
        assert!(s.contains("\"ph\":\"X\"") && s.contains("\"dur\":3"));
        assert!(s.contains("\"ph\":\"C\"") && s.contains("\"epoch\""));
        assert!(s.contains("\"occupancy\""));
        assert!(s.contains("\"thread_name\""));
    }

    #[test]
    fn req_stage_becomes_x_span_with_request_arg() {
        let mut t = ChromeTrace::new();
        t.add_events(&[ev(
            0,
            3,
            8_000,
            Event::ReqStage {
                req: 0x99,
                stage: Label::new("shard"),
                nanos: 2_000,
            },
        )]);
        let s = t.to_json_string();
        assert!(s.contains("\"req.shard\""), "{s}");
        assert!(s.contains("\"ph\":\"X\""), "{s}");
        assert!(s.contains("\"req\":153"), "args carry the id: {s}");
        assert!(s.contains("\"ts\":6"), "start = end - dur: {s}");
    }

    #[test]
    fn dropped_counts_become_per_ring_metadata() {
        let mut t = ChromeTrace::new();
        t.note_dropped(&[(4, 17), (9, 2)]);
        let s = t.to_json_string();
        assert_eq!(s.matches("\"trace_events_dropped\"").count(), 2, "{s}");
        assert!(s.contains("\"dropped\":17"), "{s}");
        assert!(s.contains("\"dropped\":2"), "{s}");
    }

    #[test]
    fn top_level_fields_survive_serialization() {
        let mut t = ChromeTrace::new();
        t.set_top_level("flightTrigger", JsonValue::from("sigusr1"));
        t.set_top_level("flightTrigger", JsonValue::from("panic"));
        let s = t.to_json_string();
        assert!(s.contains("\"flightTrigger\":\"panic\""), "{s}");
        assert!(!s.contains("sigusr1"), "replaced, not duplicated: {s}");
    }

    #[test]
    fn timestamps_are_sorted_in_output() {
        let mut t = ChromeTrace::new();
        // Emitted out of order; the span's start (7000-3000=4000) must be
        // resorted before the 5000 instant.
        t.add_events(&[
            ev(0, 1, 5_000, Event::RelocationBailed { src_slot: 1 }),
            ev(
                1,
                1,
                7_000,
                Event::QuerySpan {
                    label: Label::new("q"),
                    nanos: 3_000,
                },
            ),
        ]);
        let s = t.to_json_string();
        assert!(s.find("\"ph\":\"X\"").unwrap() < s.find("\"ph\":\"i\"").unwrap());
    }
}
