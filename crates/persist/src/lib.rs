//! # smc-persist — crash-consistent snapshots and cold-start recovery
//!
//! The paper's collections are an in-memory story; this crate gives them a
//! disk one, page-granular and behind the indirection table, so the
//! in-memory layer keeps its §3 invariants untouched:
//!
//! * **Snapshot** ([`Persist::snapshot_to`]): walks a live collection under
//!   one epoch pin — tolerating concurrent compaction exactly the way
//!   enumeration does (§5.2 group protocol) — and writes its objects into a
//!   generation-numbered page file plus a small text manifest. Every page
//!   carries an FNV-1a-64 checksum; the manifest is written to a temporary
//!   name, fsynced, and atomically renamed over the old one, so the rename
//!   is the commit point: a crash at any earlier instant leaves the
//!   previous snapshot fully intact.
//! * **Recovery** ([`Persist::recover_from`]): rebuilds a collection cold
//!   from the manifest + page file, checksum-verifying every page *before*
//!   materializing any of its objects, then reconciling the rebuilt heap
//!   against the manifest's object count and content digest and against
//!   `Smc::verify`. Torn or corrupted files fail closed with the offending
//!   page named — never a partially-populated heap, never a panic.
//! * **Heapfile spill store** ([`SpillFile`]): a
//!   [`PageStore`] over a single file with free-slot
//!   recycling, backing the larger-than-memory tier
//!   (`Smc::enable_spill`) with disk instead of the in-memory test store.
//!   Spill pages are transient working state — they are *not* fsynced and
//!   carry no durability promise; snapshots are the durability story.
//!
//! ## On-disk format
//!
//! `MANIFEST` (text, one `key value` pair per line after the schema line):
//!
//! ```text
//! smc-snapshot/v1
//! generation 3
//! type_id 17316155193394307635
//! obj_size 16
//! pages 12
//! objects 40960
//! digest 9876543210
//! page_file pages-3.dat
//! page_bytes 655744
//! ```
//!
//! `pages-<generation>.dat`: a sequence of pages, each
//! `[magic u64][index u64][count u64][obj_size u64][payload][checksum u64]`
//! with every integer little-endian and the checksum covering all
//! preceding bytes of the page. The digest is order-independent (a
//! wrapping sum of per-object FNV hashes), so it can be compared against
//! any enumeration order of the rebuilt collection.
//!
//! ## Crash matrix
//!
//! Failpoints ([`FaultSite::SnapshotPage`], [`FaultSite::SnapshotManifest`],
//! [`FaultSite::SnapshotRename`]) kill a snapshot at each distinct on-disk
//! state; `tests/recovery_torn.rs` drives all of them plus post-hoc file
//! truncation/corruption and asserts recovery either restores the previous
//! generation bit-exact or reports a clean, named error.

#![warn(missing_docs)]

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use smc::Smc;
use smc_memory::block::type_id_of;
use smc_memory::context::ContextConfig;
use smc_memory::fault::FaultSite;
use smc_memory::runtime::Runtime;
use smc_memory::spill::{fnv1a64, PageStore, SpillIoError};
use smc_memory::sync::Mutex;
use smc_memory::tabular::Tabular;

/// Magic word opening every snapshot page (`SMCPERS1`).
const PAGE_MAGIC: u64 = u64::from_le_bytes(*b"SMCPERS1");
/// First line of every manifest; bumped on incompatible format changes.
const MANIFEST_SCHEMA: &str = "smc-snapshot/v1";
/// Target payload bytes per snapshot page.
const PAGE_TARGET_BYTES: usize = 256 * 1024;
/// Manifest file name inside a snapshot directory.
const MANIFEST: &str = "MANIFEST";

/// Errors from snapshotting, recovery, and the heapfile store.
///
/// Every variant is fail-closed: when one is returned, no partial state
/// escaped — a failed snapshot leaves the previous generation untouched,
/// and a failed recovery returns no collection at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// No manifest exists in the snapshot directory (nothing to recover).
    NoSnapshot,
    /// An I/O operation failed (includes injected snapshot failpoints).
    Io(String),
    /// The manifest or a page header is malformed; the message names the
    /// offending file, line, or page.
    Format(String),
    /// The snapshot stores a different object type or size than `T`.
    TypeMismatch {
        /// Type id recorded in the manifest.
        found: u64,
        /// Type id of the collection being recovered.
        expected: u64,
    },
    /// A page's checksum did not match its contents.
    PageChecksum {
        /// Zero-based index of the rejected page.
        page: u64,
    },
    /// The page file ended before a page was complete.
    PageTruncated {
        /// Zero-based index of the truncated page.
        page: u64,
        /// Bytes the page still needed.
        expected: u64,
        /// Bytes actually available.
        got: u64,
    },
    /// The rebuilt collection's content digest or object count does not
    /// match the manifest.
    DigestMismatch {
        /// Digest recorded in the manifest.
        expected: u64,
        /// Digest recomputed from the rebuilt collection.
        got: u64,
    },
    /// The rebuilt heap failed `Smc::verify` (structural violations).
    Verify(Vec<String>),
    /// An allocation failed while materializing recovered objects.
    Alloc(smc_memory::MemError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::NoSnapshot => write!(f, "no snapshot manifest found"),
            PersistError::Io(msg) => write!(f, "snapshot i/o failed: {msg}"),
            PersistError::Format(msg) => write!(f, "snapshot format error: {msg}"),
            PersistError::TypeMismatch { found, expected } => write!(
                f,
                "snapshot holds type_id {found} but the collection expects {expected}"
            ),
            PersistError::PageChecksum { page } => {
                write!(
                    f,
                    "page {page}: checksum mismatch (torn or corrupted write)"
                )
            }
            PersistError::PageTruncated {
                page,
                expected,
                got,
            } => write!(
                f,
                "page {page}: truncated ({got} of {expected} bytes present)"
            ),
            PersistError::DigestMismatch { expected, got } => write!(
                f,
                "content digest mismatch: manifest {expected:#x}, rebuilt {got:#x}"
            ),
            PersistError::Verify(violations) => {
                write!(f, "recovered heap failed verification: {violations:?}")
            }
            PersistError::Alloc(e) => write!(f, "allocation failed during recovery: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e.to_string())
    }
}

/// Outcome of a successful [`Persist::snapshot_to`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotReport {
    /// Generation number committed (monotonically increasing per directory).
    pub generation: u64,
    /// Pages written.
    pub pages: u64,
    /// Objects captured.
    pub objects: u64,
    /// Total page-file bytes.
    pub bytes: u64,
    /// Wall time of the snapshot walk + write + commit.
    pub nanos: u64,
}

/// Outcome of a successful [`Persist::recover_from`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Generation that was loaded.
    pub generation: u64,
    /// Pages read and verified.
    pub pages: u64,
    /// Objects materialized.
    pub objects: u64,
    /// Wall time of the load + verification.
    pub nanos: u64,
}

/// Options for [`Persist::recover_opts`]: context tunables plus an optional
/// page store, attached *before* any object is materialized so a recovery
/// into a budget smaller than the dataset rides the spill rung instead of
/// failing with `OutOfMemory`.
#[derive(Default)]
pub struct RecoverOptions {
    /// Context configuration for the rebuilt collection.
    pub config: ContextConfig,
    /// Spill store to attach before loading begins.
    pub store: Option<Arc<dyn PageStore>>,
}

/// Snapshot/recovery extension methods for [`Smc`]. Blanket-implemented;
/// bring the trait into scope and call the methods on any collection.
pub trait Persist<T: Tabular>: Sized {
    /// Writes a crash-consistent snapshot of the collection into `dir`.
    ///
    /// Safe to run live: the walk holds one epoch pin and follows the same
    /// §5.2 protocol as enumeration, so concurrent writers and compaction
    /// passes proceed unhindered (objects added or removed during the walk
    /// may or may not be included — the collection's documented isolation
    /// level). Spilled pages are captured without promoting them.
    ///
    /// The atomic-rename commit guarantees `dir` always holds exactly one
    /// loadable snapshot: the previous one until the instant of the rename,
    /// the new one after.
    ///
    /// ```
    /// use smc_persist::Persist;
    /// let dir = std::env::temp_dir().join(format!("smc-doc-snap-{}", std::process::id()));
    /// let rt = smc_memory::Runtime::new();
    /// let people: smc::Smc<[u64; 2]> = smc::Smc::new(&rt);
    /// for i in 0..100 {
    ///     people.add([i, i * i]);
    /// }
    /// let report = people.snapshot_to(&dir).unwrap();
    /// assert_eq!(report.objects, 100);
    /// assert_eq!(report.generation, 1);
    /// # std::fs::remove_dir_all(&dir).ok();
    /// ```
    fn snapshot_to(&self, dir: impl AsRef<Path>) -> Result<SnapshotReport, PersistError>;

    /// Rebuilds a collection from the snapshot in `dir`, verifying every
    /// page checksum, the manifest's object count and content digest, and
    /// the rebuilt heap's structural invariants before returning it.
    ///
    /// ```
    /// use smc_persist::Persist;
    /// let dir = std::env::temp_dir().join(format!("smc-doc-rec-{}", std::process::id()));
    /// let rt = smc_memory::Runtime::new();
    /// let people: smc::Smc<[u64; 2]> = smc::Smc::new(&rt);
    /// for i in 0..100 {
    ///     people.add([i, i * i]);
    /// }
    /// people.snapshot_to(&dir).unwrap();
    ///
    /// // Cold start: a fresh runtime, nothing in memory.
    /// let rt2 = smc_memory::Runtime::new();
    /// let (recovered, report) = smc::Smc::<[u64; 2]>::recover_from(&rt2, &dir).unwrap();
    /// assert_eq!(report.objects, 100);
    /// assert_eq!(recovered.len(), 100);
    /// let guard = rt2.pin();
    /// let mut sum = 0;
    /// recovered.for_each(&guard, |o| sum += o[1]);
    /// assert_eq!(sum, (0..100u64).map(|i| i * i).sum());
    /// # drop(guard);
    /// # std::fs::remove_dir_all(&dir).ok();
    /// ```
    fn recover_from(
        runtime: &Arc<Runtime>,
        dir: impl AsRef<Path>,
    ) -> Result<(Self, RecoveryReport), PersistError>;

    /// [`recover_from`](Self::recover_from) with explicit context tunables
    /// and an optional spill store (attached before loading, so recovery
    /// into a budget smaller than the dataset spills instead of failing).
    fn recover_opts(
        runtime: &Arc<Runtime>,
        opts: RecoverOptions,
        dir: impl AsRef<Path>,
    ) -> Result<(Self, RecoveryReport), PersistError>;
}

impl<T: Tabular> Persist<T> for Smc<T> {
    fn snapshot_to(&self, dir: impl AsRef<Path>) -> Result<SnapshotReport, PersistError> {
        snapshot_impl(self, dir.as_ref())
    }

    fn recover_from(
        runtime: &Arc<Runtime>,
        dir: impl AsRef<Path>,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        recover_impl(runtime, RecoverOptions::default(), dir.as_ref())
    }

    fn recover_opts(
        runtime: &Arc<Runtime>,
        opts: RecoverOptions,
        dir: impl AsRef<Path>,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        recover_impl(runtime, opts, dir.as_ref())
    }
}

// ---------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------

fn snapshot_impl<T: Tabular>(smc: &Smc<T>, dir: &Path) -> Result<SnapshotReport, PersistError> {
    let start = Instant::now();
    let runtime = smc.runtime().clone();
    let faults = runtime.faults().clone();
    fs::create_dir_all(dir)?;
    // Leftover temporaries from a killed snapshot are dead weight; the
    // committed generation never lives under a .tmp name.
    sweep_temporaries(dir);

    let previous = read_manifest(dir).ok();
    let generation = previous.as_ref().map_or(1, |m| m.generation + 1);
    let obj_size = std::mem::size_of::<T>().max(1);
    let per_page = (PAGE_TARGET_BYTES / obj_size).max(1);

    let page_name = format!("pages-{generation}.dat");
    let tmp_path = dir.join(format!("{page_name}.tmp"));
    let mut file = File::create(&tmp_path)?;

    // One pinned walk over the live collection — resident blocks, in-flight
    // compaction groups, and spilled pages alike.
    let guard = runtime.pin();
    let mut page_buf: Vec<u8> = Vec::with_capacity(per_page * obj_size + 40);
    let mut in_page = 0usize;
    let mut pages = 0u64;
    let mut objects = 0u64;
    let mut bytes = 0u64;
    let mut digest = 0u64;
    let mut io_err: Option<PersistError> = None;
    smc.try_for_each(&guard, |obj| {
        if io_err.is_some() {
            return;
        }
        if in_page == 0 {
            begin_page(&mut page_buf, pages, obj_size as u64);
        }
        let raw = unsafe {
            std::slice::from_raw_parts(obj as *const T as *const u8, std::mem::size_of::<T>())
        };
        page_buf.extend_from_slice(raw);
        digest = digest.wrapping_add(fnv1a64(raw));
        objects += 1;
        in_page += 1;
        if in_page >= per_page {
            if let Err(e) = flush_page(&mut file, &faults, &mut page_buf) {
                io_err = Some(e);
                return;
            }
            bytes += (page_buf.len()) as u64;
            page_buf.clear();
            in_page = 0;
            pages += 1;
        }
    })
    .map_err(PersistError::Alloc)?;
    drop(guard);
    if let Some(e) = io_err {
        fs::remove_file(&tmp_path).ok();
        return Err(e);
    }
    if in_page > 0 {
        flush_page(&mut file, &faults, &mut page_buf).inspect_err(|_| {
            fs::remove_file(&tmp_path).ok();
        })?;
        bytes += page_buf.len() as u64;
        pages += 1;
    }
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp_path, dir.join(&page_name))?;

    // Manifest: write-new, fsync, then atomically rename over the old one —
    // the rename is the snapshot's commit point.
    let manifest = Manifest {
        generation,
        type_id: type_id_of::<T>(),
        obj_size: obj_size as u64,
        pages,
        objects,
        digest,
        page_file: page_name.clone(),
        page_bytes: bytes,
    };
    let manifest_tmp = dir.join("MANIFEST.tmp");
    if faults.should_fail(FaultSite::SnapshotManifest) {
        // Simulated kill before the manifest hits disk: the new page file
        // exists but the old manifest still rules the directory.
        return Err(PersistError::Io(
            "injected fault at snapshot-manifest".into(),
        ));
    }
    let mut mf = File::create(&manifest_tmp)?;
    mf.write_all(manifest.render().as_bytes())?;
    mf.sync_all()?;
    drop(mf);
    if faults.should_fail(FaultSite::SnapshotRename) {
        // Simulated kill at the commit point, before the rename happens.
        return Err(PersistError::Io("injected fault at snapshot-rename".into()));
    }
    fs::rename(&manifest_tmp, dir.join(MANIFEST))?;
    sync_dir(dir);

    // The previous generation is superseded; reclaim its page file.
    if let Some(prev) = previous {
        if prev.page_file != manifest.page_file {
            fs::remove_file(dir.join(&prev.page_file)).ok();
        }
    }

    let nanos = start.elapsed().as_nanos() as u64;
    smc_obs::trace::emit(smc_obs::Event::SnapshotWritten {
        context: smc.context().id(),
        pages,
        bytes,
        nanos,
    });
    Ok(SnapshotReport {
        generation,
        pages,
        objects,
        bytes,
        nanos,
    })
}

/// Starts a page in `buf`: magic, index, count placeholder, object size.
fn begin_page(buf: &mut Vec<u8>, index: u64, obj_size: u64) {
    buf.extend_from_slice(&PAGE_MAGIC.to_le_bytes());
    buf.extend_from_slice(&index.to_le_bytes());
    buf.extend_from_slice(&0u64.to_le_bytes()); // count, patched on flush
    buf.extend_from_slice(&obj_size.to_le_bytes());
}

/// Patches the page's object count, appends the checksum, and writes it.
fn flush_page(
    file: &mut File,
    faults: &smc_memory::FaultInjector,
    buf: &mut Vec<u8>,
) -> Result<(), PersistError> {
    let obj_size = u64::from_le_bytes(buf[24..32].try_into().unwrap());
    let count = (buf.len() as u64 - 32) / obj_size;
    buf[16..24].copy_from_slice(&count.to_le_bytes());
    let sum = fnv1a64(buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    if faults.should_fail(FaultSite::SnapshotPage) {
        // Simulated kill mid-page: write a torn prefix (what a real crash
        // leaves behind) and fail the snapshot.
        let torn = buf.len() / 2;
        file.write_all(&buf[..torn])?;
        return Err(PersistError::Io("injected fault at snapshot-page".into()));
    }
    file.write_all(buf)?;
    Ok(())
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

fn recover_impl<T: Tabular>(
    runtime: &Arc<Runtime>,
    opts: RecoverOptions,
    dir: &Path,
) -> Result<(Smc<T>, RecoveryReport), PersistError> {
    let start = Instant::now();
    let manifest = read_manifest(dir)?;
    let expected_type = type_id_of::<T>();
    if manifest.type_id != expected_type {
        return Err(PersistError::TypeMismatch {
            found: manifest.type_id,
            expected: expected_type,
        });
    }
    let obj_size = std::mem::size_of::<T>().max(1) as u64;
    if manifest.obj_size != obj_size {
        return Err(PersistError::Format(format!(
            "manifest obj_size {} != size_of::<T>() {}",
            manifest.obj_size, obj_size
        )));
    }

    let path = dir.join(&manifest.page_file);
    let mut file =
        File::open(&path).map_err(|e| PersistError::Io(format!("{}: {e}", manifest.page_file)))?;
    let file_len = file.metadata()?.len();
    if file_len != manifest.page_bytes {
        // The whole-file length check catches truncation before any page is
        // even parsed; the page in which the cut falls is reported below.
        // Pages are near-uniform; walking headers would need the bytes we
        // may not have, so estimate from the average committed page size.
        let cut_page = manifest
            .page_bytes
            .checked_div(manifest.pages)
            .and_then(|avg| file_len.checked_div(avg))
            .map_or(0, |est| est.min(manifest.pages.saturating_sub(1)));
        return Err(PersistError::PageTruncated {
            page: cut_page,
            expected: manifest.page_bytes,
            got: file_len,
        });
    }

    let smc: Smc<T> = Smc::with_config(runtime, opts.config);
    if let Some(store) = opts.store {
        smc.enable_spill(store);
    }

    let mut pages = 0u64;
    let mut objects = 0u64;
    let mut digest = 0u64;
    let mut header = [0u8; 32];
    let mut body: Vec<u8> = Vec::new();
    for page in 0..manifest.pages {
        if let Err(e) = file.read_exact(&mut header) {
            return Err(truncated(page, 32, &e));
        }
        let magic = u64::from_le_bytes(header[0..8].try_into().unwrap());
        if magic != PAGE_MAGIC {
            return Err(PersistError::PageChecksum { page });
        }
        let index = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let count = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let size = u64::from_le_bytes(header[24..32].try_into().unwrap());
        if index != page || size != obj_size {
            return Err(PersistError::Format(format!(
                "page {page}: header claims index {index}, obj_size {size}"
            )));
        }
        let payload = count
            .checked_mul(obj_size)
            .filter(|&p| p <= manifest.page_bytes)
            .ok_or(PersistError::Format(format!(
                "page {page}: implausible object count {count}"
            )))?;
        body.clear();
        body.resize(payload as usize + 8, 0);
        if let Err(e) = file.read_exact(&mut body) {
            return Err(truncated(page, payload + 8, &e));
        }
        // Verify the checksum over the whole page BEFORE trusting a single
        // object out of it — fail closed on torn writes.
        let stored = u64::from_le_bytes(body[payload as usize..].try_into().unwrap());
        let mut sum = fnv1a64(&header);
        sum = fnv_continue(sum, &body[..payload as usize]);
        if sum != stored {
            return Err(PersistError::PageChecksum { page });
        }
        for i in 0..count {
            let off = (i * obj_size) as usize;
            let raw = &body[off..off + obj_size as usize];
            digest = digest.wrapping_add(fnv1a64(raw));
            // SAFETY: `raw` holds size_of::<T>() bytes written from a live
            // `T` by the snapshot; `T: Tabular` guarantees plain data.
            let value = unsafe { std::ptr::read_unaligned(raw.as_ptr() as *const T) };
            smc.try_add(value).map_err(PersistError::Alloc)?;
            objects += 1;
        }
        pages += 1;
    }

    if objects != manifest.objects || digest != manifest.digest {
        return Err(PersistError::DigestMismatch {
            expected: manifest.digest,
            got: digest,
        });
    }
    // Structural reconcile: the rebuilt heap must satisfy every §3
    // invariant, and the observatory must agree with the manifest count.
    smc.verify().map_err(PersistError::Verify)?;
    let snap = smc.heap_snapshot();
    let (valid, _, _, _) = snap.totals();
    let spilled: u64 = snap.collections.iter().map(|c| c.spilled_objects).sum();
    if valid + spilled != manifest.objects {
        return Err(PersistError::Verify(vec![format!(
            "heap snapshot counts {valid} resident + {spilled} spilled objects, \
             manifest says {}",
            manifest.objects
        )]));
    }

    let nanos = start.elapsed().as_nanos() as u64;
    smc_obs::trace::emit(smc_obs::Event::RecoveryLoaded {
        context: smc.context().id(),
        pages,
        objects,
        nanos,
    });
    Ok((
        smc,
        RecoveryReport {
            generation: manifest.generation,
            pages,
            objects,
            nanos,
        },
    ))
}

fn truncated(page: u64, expected: u64, e: &std::io::Error) -> PersistError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        PersistError::PageTruncated {
            page,
            expected,
            got: 0,
        }
    } else {
        PersistError::Io(format!("page {page}: {e}"))
    }
}

/// Continues an FNV-1a-64 hash across a second byte run.
fn fnv_continue(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Manifest {
    generation: u64,
    type_id: u64,
    obj_size: u64,
    pages: u64,
    objects: u64,
    digest: u64,
    page_file: String,
    page_bytes: u64,
}

impl Manifest {
    fn render(&self) -> String {
        format!(
            "{MANIFEST_SCHEMA}\n\
             generation {}\n\
             type_id {}\n\
             obj_size {}\n\
             pages {}\n\
             objects {}\n\
             digest {}\n\
             page_file {}\n\
             page_bytes {}\n",
            self.generation,
            self.type_id,
            self.obj_size,
            self.pages,
            self.objects,
            self.digest,
            self.page_file,
            self.page_bytes,
        )
    }
}

fn read_manifest(dir: &Path) -> Result<Manifest, PersistError> {
    let path = dir.join(MANIFEST);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(PersistError::NoSnapshot),
        Err(e) => return Err(PersistError::Io(format!("{MANIFEST}: {e}"))),
    };
    let mut lines = text.lines();
    let schema = lines.next().unwrap_or("");
    if schema != MANIFEST_SCHEMA {
        return Err(PersistError::Format(format!(
            "{MANIFEST}: unknown schema {schema:?}"
        )));
    }
    let mut m = Manifest {
        generation: 0,
        type_id: 0,
        obj_size: 0,
        pages: 0,
        objects: 0,
        digest: 0,
        page_file: String::new(),
        page_bytes: 0,
    };
    for line in lines {
        let Some((key, value)) = line.split_once(' ') else {
            if line.trim().is_empty() {
                continue;
            }
            return Err(PersistError::Format(format!(
                "{MANIFEST}: malformed line {line:?}"
            )));
        };
        let num = || -> Result<u64, PersistError> {
            value
                .trim()
                .parse()
                .map_err(|_| PersistError::Format(format!("{MANIFEST}: bad value for {key}")))
        };
        match key {
            "generation" => m.generation = num()?,
            "type_id" => m.type_id = num()?,
            "obj_size" => m.obj_size = num()?,
            "pages" => m.pages = num()?,
            "objects" => m.objects = num()?,
            "digest" => m.digest = num()?,
            "page_file" => m.page_file = value.trim().to_string(),
            "page_bytes" => m.page_bytes = num()?,
            _ => {} // forward compatibility: ignore unknown keys
        }
    }
    if m.generation == 0 || m.page_file.is_empty() {
        return Err(PersistError::Format(format!(
            "{MANIFEST}: missing generation or page_file"
        )));
    }
    // Page files live next to the manifest; a path that escapes the
    // directory is corruption (or worse), not a snapshot.
    if m.page_file.contains('/') || m.page_file.contains("..") {
        return Err(PersistError::Format(format!(
            "{MANIFEST}: suspicious page_file {:?}",
            m.page_file
        )));
    }
    Ok(m)
}

fn sweep_temporaries(dir: &Path) {
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            if entry.file_name().to_string_lossy().ends_with(".tmp") {
                fs::remove_file(entry.path()).ok();
            }
        }
    }
}

/// Best-effort directory fsync (makes the manifest rename durable on
/// filesystems that need it; ignored where directories can't be opened).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        d.sync_all().ok();
    }
}

// ---------------------------------------------------------------------
// Heapfile spill store
// ---------------------------------------------------------------------

/// A [`PageStore`] over one file, with free-slot recycling: discarded page
/// slots are reused by later stores of equal-or-smaller size, so a
/// steady-state spill working set does not grow the file without bound.
///
/// Spill pages are transient working state (they die with the process), so
/// writes are **not** fsynced — durability comes from snapshots, not spill.
#[derive(Debug)]
pub struct SpillFile {
    inner: Mutex<SpillFileInner>,
}

#[derive(Debug)]
struct SpillFileInner {
    file: File,
    /// End of the written region (next append offset).
    end: u64,
    /// All slots ever created; index = ticket.
    slots: Vec<SpillSlot>,
    /// Indices of slots available for reuse.
    free: Vec<usize>,
}

#[derive(Debug, Clone, Copy)]
struct SpillSlot {
    offset: u64,
    /// Capacity of the slot (bytes reserved in the file).
    cap: u64,
    /// Live bytes of the current page (0 when free).
    len: u64,
}

impl SpillFile {
    /// Creates (truncating) the heapfile at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<SpillFile> {
        if let Some(parent) = path.as_ref().parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(SpillFile {
            inner: Mutex::new(SpillFileInner {
                file,
                end: 0,
                slots: Vec::new(),
                free: Vec::new(),
            }),
        })
    }

    /// Pages currently stored.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock();
        inner.slots.len() - inner.free.len()
    }

    /// True when no pages are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of file capacity currently reserved (live + recyclable slots).
    pub fn file_bytes(&self) -> u64 {
        self.inner.lock().end
    }
}

impl PageStore for SpillFile {
    fn store_page(&self, _block_id: u64, bytes: &[u8]) -> Result<u64, SpillIoError> {
        let mut inner = self.inner.lock();
        let len = bytes.len() as u64;
        // First free slot large enough; spill pages of one context are
        // near-uniform so first-fit recycles almost perfectly.
        let reuse = inner
            .free
            .iter()
            .position(|&i| inner.slots[i].cap >= len)
            .map(|pos| inner.free.swap_remove(pos));
        let ticket = match reuse {
            Some(i) => {
                inner.slots[i].len = len;
                i
            }
            None => {
                let offset = inner.end;
                inner.end += len;
                inner.slots.push(SpillSlot {
                    offset,
                    cap: len,
                    len,
                });
                inner.slots.len() - 1
            }
        };
        let offset = inner.slots[ticket].offset;
        inner
            .file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| inner.file.write_all(bytes))
            .map_err(|e| {
                // The slot is poisoned-free again; the caller rolls back.
                inner.slots[ticket].len = 0;
                inner.free.push(ticket);
                SpillIoError(format!("spill write at {offset}: {e}"))
            })?;
        Ok(ticket as u64)
    }

    fn load_page(&self, ticket: u64, block_id: u64, out: &mut Vec<u8>) -> Result<(), SpillIoError> {
        let mut inner = self.inner.lock();
        let slot = *inner
            .slots
            .get(ticket as usize)
            .filter(|s| s.len > 0)
            .ok_or_else(|| {
                SpillIoError(format!("no page at ticket {ticket} (block {block_id})"))
            })?;
        out.clear();
        out.resize(slot.len as usize, 0);
        inner
            .file
            .seek(SeekFrom::Start(slot.offset))
            .and_then(|_| inner.file.read_exact(out))
            .map_err(|e| SpillIoError(format!("spill read at {}: {e}", slot.offset)))
    }

    fn discard_page(&self, ticket: u64) {
        let mut inner = self.inner.lock();
        if let Some(slot) = inner.slots.get_mut(ticket as usize) {
            if slot.len > 0 {
                slot.len = 0;
                inner.free.push(ticket as usize);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smc-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fill(smc: &Smc<[u64; 2]>, n: u64) {
        for i in 0..n {
            smc.add([i, i.wrapping_mul(31)]);
        }
    }

    fn content_sum(rt: &Arc<Runtime>, smc: &Smc<[u64; 2]>) -> (u64, u64) {
        let guard = rt.pin();
        let (mut a, mut b) = (0u64, 0u64);
        smc.for_each(&guard, |o| {
            a = a.wrapping_add(o[0]);
            b = b.wrapping_add(o[1]);
        });
        (a, b)
    }

    #[test]
    fn snapshot_recover_round_trip_bit_exact() {
        let dir = tmpdir("roundtrip");
        let rt = Runtime::new();
        let smc: Smc<[u64; 2]> = Smc::new(&rt);
        fill(&smc, 10_000);
        let rep = smc.snapshot_to(&dir).unwrap();
        assert_eq!(rep.objects, 10_000);
        assert_eq!(rep.generation, 1);
        assert!(rep.pages >= 1);

        let rt2 = Runtime::new();
        let (rec, rrep) = Smc::<[u64; 2]>::recover_from(&rt2, &dir).unwrap();
        assert_eq!(rrep.objects, 10_000);
        assert_eq!(rrep.generation, 1);
        assert_eq!(rec.len(), 10_000);
        assert_eq!(content_sum(&rt, &smc), content_sum(&rt2, &rec));
        rec.verify().unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generations_supersede_and_reclaim() {
        let dir = tmpdir("generations");
        let rt = Runtime::new();
        let smc: Smc<[u64; 2]> = Smc::new(&rt);
        fill(&smc, 100);
        assert_eq!(smc.snapshot_to(&dir).unwrap().generation, 1);
        fill(&smc, 50);
        assert_eq!(smc.snapshot_to(&dir).unwrap().generation, 2);
        // Only the committed generation's page file remains.
        let files: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(files.contains(&"pages-2.dat".to_string()), "{files:?}");
        assert!(!files.contains(&"pages-1.dat".to_string()), "{files:?}");
        let rt2 = Runtime::new();
        let (rec, rep) = Smc::<[u64; 2]>::recover_from(&rt2, &dir).unwrap();
        assert_eq!(rep.generation, 2);
        assert_eq!(rec.len(), 150);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_missing_dir_is_no_snapshot() {
        let rt = Runtime::new();
        let err =
            Smc::<[u64; 2]>::recover_from(&rt, "/nonexistent/smc-persist-nowhere").unwrap_err();
        assert_eq!(err, PersistError::NoSnapshot);
    }

    #[test]
    fn recover_rejects_wrong_type() {
        let dir = tmpdir("wrongtype");
        let rt = Runtime::new();
        let smc: Smc<[u64; 2]> = Smc::new(&rt);
        fill(&smc, 10);
        smc.snapshot_to(&dir).unwrap();
        let rt2 = Runtime::new();
        let err = Smc::<u64>::recover_from(&rt2, &dir).unwrap_err();
        assert!(matches!(err, PersistError::TypeMismatch { .. }), "{err:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_page_file_fails_closed_with_named_page() {
        let dir = tmpdir("truncate");
        let rt = Runtime::new();
        let smc: Smc<[u64; 2]> = Smc::new(&rt);
        fill(&smc, 20_000); // several pages
        let rep = smc.snapshot_to(&dir).unwrap();
        assert!(rep.pages >= 2);
        let page_path = dir.join(format!("pages-{}.dat", rep.generation));
        let full = fs::metadata(&page_path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&page_path).unwrap();
        f.set_len(full - 100).unwrap();
        drop(f);
        let rt2 = Runtime::new();
        let err = Smc::<[u64; 2]>::recover_from(&rt2, &dir).unwrap_err();
        match err {
            PersistError::PageTruncated { expected, got, .. } => {
                assert_eq!(expected, full);
                assert_eq!(got, full - 100);
            }
            other => panic!("want PageTruncated, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_page_fails_closed_with_named_page() {
        let dir = tmpdir("corrupt");
        let rt = Runtime::new();
        let smc: Smc<[u64; 2]> = Smc::new(&rt);
        fill(&smc, 20_000);
        let rep = smc.snapshot_to(&dir).unwrap();
        assert!(rep.pages >= 2);
        let page_path = dir.join(format!("pages-{}.dat", rep.generation));
        let mut bytes = fs::read(&page_path).unwrap();
        // Flip one payload byte near the end of the file — inside the last
        // page, clear of its trailing checksum word.
        let idx = bytes.len() - 100;
        bytes[idx] ^= 0xff;
        fs::write(&page_path, &bytes).unwrap();
        let rt2 = Runtime::new();
        let err = Smc::<[u64; 2]>::recover_from(&rt2, &dir).unwrap_err();
        let last = rep.pages - 1;
        assert_eq!(
            err,
            PersistError::PageChecksum { page: last },
            "corruption in the last page must be named"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_captures_spilled_pages_without_promoting() {
        let dir = tmpdir("spilled");
        let rt = Runtime::new();
        let smc: Smc<[u64; 2]> = Smc::with_config(
            &rt,
            ContextConfig {
                budget_bytes: Some(smc_memory::BLOCK_SIZE as u64),
                ..ContextConfig::default()
            },
        );
        let store = Arc::new(smc_memory::MemoryPageStore::new());
        assert!(smc.enable_spill(store));
        fill(&smc, 12_000); // several blocks under a one-block budget
        let spilled_before = smc.spilled_blocks();
        assert!(spilled_before >= 2, "dataset must exceed the budget");
        let rep = smc.snapshot_to(&dir).unwrap();
        assert_eq!(rep.objects, 12_000);
        assert_eq!(
            smc.spilled_blocks(),
            spilled_before,
            "snapshot must not promote spilled pages"
        );
        let rt2 = Runtime::new();
        let (rec, _) = Smc::<[u64; 2]>::recover_from(&rt2, &dir).unwrap();
        assert_eq!(rec.len(), 12_000);
        assert_eq!(content_sum(&rt, &smc), content_sum(&rt2, &rec));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_under_budget_spills_into_store() {
        let dir = tmpdir("budgeted");
        let rt = Runtime::new();
        let smc: Smc<[u64; 2]> = Smc::new(&rt);
        fill(&smc, 12_000);
        smc.snapshot_to(&dir).unwrap();
        let rt2 = Runtime::new();
        let (rec, rep) = Smc::<[u64; 2]>::recover_opts(
            &rt2,
            RecoverOptions {
                config: ContextConfig {
                    budget_bytes: Some(smc_memory::BLOCK_SIZE as u64),
                    ..ContextConfig::default()
                },
                store: Some(Arc::new(smc_memory::MemoryPageStore::new())),
            },
            &dir,
        )
        .unwrap();
        assert_eq!(rep.objects, 12_000);
        assert!(rec.spilled_blocks() >= 2, "budgeted recovery must spill");
        assert_eq!(content_sum(&rt, &smc), content_sum(&rt2, &rec));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_file_store_round_trips_and_recycles() {
        let dir = tmpdir("heapfile");
        let sf = SpillFile::create(dir.join("spill.dat")).unwrap();
        let a = sf.store_page(1, b"first page").unwrap();
        let b = sf.store_page(2, b"second one").unwrap();
        assert_eq!(sf.len(), 2);
        let mut out = Vec::new();
        sf.load_page(a, 1, &mut out).unwrap();
        assert_eq!(out, b"first page");
        sf.discard_page(a);
        assert_eq!(sf.len(), 1);
        let end = sf.file_bytes();
        // Same-size store reuses the freed slot: no file growth.
        let c = sf.store_page(3, b"third page").unwrap();
        assert_eq!(sf.file_bytes(), end);
        sf.load_page(c, 3, &mut out).unwrap();
        assert_eq!(out, b"third page");
        sf.load_page(b, 2, &mut out).unwrap();
        assert_eq!(out, b"second one");
        assert!(sf.load_page(99, 9, &mut out).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_file_backs_a_live_collection() {
        let dir = tmpdir("heapfile-live");
        let rt = Runtime::new();
        let smc: Smc<[u64; 2]> = Smc::with_config(
            &rt,
            ContextConfig {
                budget_bytes: Some(smc_memory::BLOCK_SIZE as u64),
                ..ContextConfig::default()
            },
        );
        let sf = Arc::new(SpillFile::create(dir.join("spill.dat")).unwrap());
        assert!(smc.enable_spill(sf.clone()));
        fill(&smc, 12_000);
        assert!(smc.spilled_blocks() >= 2);
        assert!(sf.len() >= 2);
        // Full scan sees every object, spilled ones straight off the file.
        let guard = rt.pin();
        let mut n = 0u64;
        let mut sum = 0u64;
        smc.for_each(&guard, |o| {
            n += 1;
            sum = sum.wrapping_add(o[0]);
        });
        drop(guard);
        assert_eq!(n, 12_000);
        assert_eq!(sum, (0..12_000u64).sum::<u64>());
        smc.verify().unwrap();
        fs::remove_dir_all(&dir).ok();
    }
}
