//! Tables: named columns, a clustered sort order, and pruned scans.
//!
//! A [`ColTable`] is built once (bulk load), optionally sorted on a
//! clustered column — the paper gives SQL Server "clustered indexes on
//! shipdate and orderdate" (§7) — and then scanned by the query plans in
//! the `tpch` crate. Range predicates on columns with segment statistics
//! skip non-overlapping segments entirely.

use std::collections::HashMap;

use smc_memory::Decimal;

use crate::column::{ColumnData, DictColumn, SegmentStats, SEGMENT_ROWS};

/// A loose value used during table building.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer (keys, dates as epoch days, quantities).
    I64(i64),
    /// Fixed-point decimal.
    Decimal(Decimal),
    /// String.
    Str(String),
}

/// Column-by-column table builder.
#[derive(Debug, Default)]
pub struct TableBuilder {
    names: Vec<String>,
    columns: Vec<Vec<Value>>,
    sort_column: Option<String>,
}

impl TableBuilder {
    /// A builder with the given column names.
    pub fn new(names: &[&str]) -> TableBuilder {
        TableBuilder {
            names: names.iter().map(|s| s.to_string()).collect(),
            columns: names.iter().map(|_| Vec::new()).collect(),
            sort_column: None,
        }
    }

    /// Declares the clustered sort column (rows are sorted on build, and
    /// that column is RLE-compressed).
    pub fn clustered_on(mut self, name: &str) -> TableBuilder {
        self.sort_column = Some(name.to_string());
        self
    }

    /// Appends one row; `values` must match the column count and order.
    pub fn push_row(&mut self, values: Vec<Value>) {
        assert_eq!(values.len(), self.columns.len(), "row arity mismatch");
        for (col, v) in self.columns.iter_mut().zip(values) {
            col.push(v);
        }
    }

    /// Sorts (if clustered), compresses, and freezes the table.
    pub fn build(mut self) -> ColTable {
        let rows = self.columns.first().map_or(0, |c| c.len());
        // Compute the clustered permutation.
        let mut perm: Vec<u32> = (0..rows as u32).collect();
        let sort_idx = self.sort_column.as_ref().map(|name| {
            self.names
                .iter()
                .position(|n| n == name)
                .expect("unknown clustered column")
        });
        if let Some(idx) = sort_idx {
            let keys: Vec<i64> = self.columns[idx]
                .iter()
                .map(|v| match v {
                    Value::I64(x) => *x,
                    Value::Decimal(d) => d.mantissa() as i64,
                    Value::Str(_) => panic!("cannot cluster on a string column"),
                })
                .collect();
            perm.sort_by_key(|&r| keys[r as usize]);
        }
        let mut columns = HashMap::new();
        for (i, name) in self.names.iter().enumerate() {
            let raw = std::mem::take(&mut self.columns[i]);
            let data = match raw.first() {
                None => ColumnData::i64(Vec::new()),
                Some(Value::I64(_)) => {
                    let values: Vec<i64> = perm
                        .iter()
                        .map(|&r| match &raw[r as usize] {
                            Value::I64(x) => *x,
                            _ => panic!("mixed column {name}"),
                        })
                        .collect();
                    if sort_idx == Some(i) {
                        ColumnData::rle(&values)
                    } else {
                        ColumnData::i64(values)
                    }
                }
                Some(Value::Decimal(_)) => {
                    let values: Vec<i128> = perm
                        .iter()
                        .map(|&r| match &raw[r as usize] {
                            Value::Decimal(d) => d.mantissa(),
                            _ => panic!("mixed column {name}"),
                        })
                        .collect();
                    ColumnData::Decimal { values }
                }
                Some(Value::Str(_)) => {
                    let mut dict = DictColumn::new();
                    for &r in &perm {
                        match &raw[r as usize] {
                            Value::Str(s) => dict.push(s),
                            _ => panic!("mixed column {name}"),
                        }
                    }
                    ColumnData::Str(dict)
                }
            };
            columns.insert(name.clone(), data);
        }
        ColTable {
            rows,
            columns,
            clustered: self.sort_column,
        }
    }
}

/// An immutable, compressed, column-oriented table.
#[derive(Debug)]
pub struct ColTable {
    rows: usize,
    columns: HashMap<String, ColumnData>,
    clustered: Option<String>,
}

impl ColTable {
    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The clustered column's name, if any.
    pub fn clustered(&self) -> Option<&str> {
        self.clustered.as_deref()
    }

    /// The column by name.
    pub fn column(&self, name: &str) -> &ColumnData {
        self.columns
            .get(name)
            .unwrap_or_else(|| panic!("no column {name}"))
    }

    /// Plain i64 view of a column (decoding RLE if needed). Query plans
    /// cache this per query, like a columnstore materializes a batch.
    pub fn i64_values(&self, name: &str) -> Vec<i64> {
        match self.column(name) {
            ColumnData::I64 { values, .. } => values.clone(),
            ColumnData::Rle { column, .. } => column.decode(),
            _ => panic!("column {name} is not integer"),
        }
    }

    /// Borrowed plain i64 column (fails on RLE; use for non-clustered).
    pub fn i64_slice(&self, name: &str) -> &[i64] {
        match self.column(name) {
            ColumnData::I64 { values, .. } => values,
            _ => panic!("column {name} is not a plain integer column"),
        }
    }

    /// Borrowed decimal mantissas.
    pub fn decimal_slice(&self, name: &str) -> &[i128] {
        match self.column(name) {
            ColumnData::Decimal { values } => values,
            _ => panic!("column {name} is not decimal"),
        }
    }

    /// Borrowed dictionary column.
    pub fn str_column(&self, name: &str) -> &DictColumn {
        match self.column(name) {
            ColumnData::Str(d) => d,
            _ => panic!("column {name} is not a string column"),
        }
    }

    /// Row ranges whose segments may satisfy `lo <= col <= hi` — segment
    /// elimination. Returns `(start_row, end_row)` ranges to scan.
    pub fn prune(&self, name: &str, lo: i64, hi: i64) -> Vec<(usize, usize)> {
        let col = self.column(name);
        let Some(stats) = col.stats() else {
            return vec![(0, self.rows)];
        };
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        for (i, s) in stats.iter().enumerate() {
            if s.overlaps(lo, hi) {
                let start = i * SEGMENT_ROWS;
                let end = ((i + 1) * SEGMENT_ROWS).min(self.rows);
                match ranges.last_mut() {
                    Some(last) if last.1 == start => last.1 = end,
                    _ => ranges.push((start, end)),
                }
            }
        }
        ranges
    }

    /// Fraction of segments a range predicate eliminates (reporting).
    pub fn elimination_ratio(&self, name: &str, lo: i64, hi: i64) -> f64 {
        let col = self.column(name);
        let Some(stats) = col.stats() else {
            return 0.0;
        };
        if stats.is_empty() {
            return 0.0;
        }
        let kept = stats.iter().filter(|s| s.overlaps(lo, hi)).count();
        1.0 - kept as f64 / stats.len() as f64
    }

    /// Total compressed bytes across columns.
    pub fn compressed_bytes(&self) -> usize {
        self.columns.values().map(|c| c.compressed_bytes()).sum()
    }

    /// Per-segment statistics of a column (for tests/inspection).
    pub fn stats(&self, name: &str) -> Option<&[SegmentStats]> {
        self.column(name).stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table(rows: usize) -> ColTable {
        let mut b = TableBuilder::new(&["id", "date", "price", "flag"]).clustered_on("date");
        for i in 0..rows {
            b.push_row(vec![
                Value::I64(i as i64),
                // Insert dates out of order to exercise the clustered sort.
                Value::I64(((rows - i) % 1000) as i64),
                Value::Decimal(Decimal::from_cents(i as i64)),
                Value::Str(if i % 2 == 0 { "A".into() } else { "B".into() }),
            ]);
        }
        b.build()
    }

    #[test]
    fn build_sorts_on_clustered_column() {
        let t = sample_table(10_000);
        assert_eq!(t.rows(), 10_000);
        assert_eq!(t.clustered(), Some("date"));
        let dates = t.i64_values("date");
        assert!(
            dates.windows(2).all(|w| w[0] <= w[1]),
            "clustered column sorted"
        );
        // Other columns permuted consistently: row i's id maps to its date.
        let ids = t.i64_slice("id");
        for (i, &id) in ids.iter().enumerate().take(100) {
            assert_eq!(dates[i], ((10_000 - id as usize) % 1000) as i64);
        }
    }

    #[test]
    fn clustered_column_is_rle() {
        let t = sample_table(10_000);
        match t.column("date") {
            ColumnData::Rle { column, .. } => assert!(column.run_count() <= 1000),
            other => panic!("expected RLE, got {other:?}"),
        }
    }

    #[test]
    fn pruning_skips_segments_on_sorted_column() {
        let t = sample_table(SEGMENT_ROWS * 4);
        // All dates in [0, 999]; sorted, so high dates live in late segments.
        let ranges = t.prune("date", 990, 1000);
        let scanned: usize = ranges.iter().map(|(s, e)| e - s).sum();
        assert!(scanned < t.rows(), "some segments must be eliminated");
        assert!(t.elimination_ratio("date", 990, 1000) > 0.0);
        // A predicate covering everything scans everything.
        let all = t.prune("date", i64::MIN, i64::MAX);
        assert_eq!(all.iter().map(|(s, e)| e - s).sum::<usize>(), t.rows());
    }

    #[test]
    fn string_and_decimal_round_trip() {
        let t = sample_table(100);
        let flags = t.str_column("flag");
        assert_eq!(flags.cardinality(), 2);
        let prices = t.decimal_slice("price");
        assert_eq!(prices.len(), 100);
        // Row order changed by clustering; check multiset instead.
        let mut sorted: Vec<i128> = prices.to_vec();
        sorted.sort();
        let expected: Vec<i128> = (0..100)
            .map(|i| Decimal::from_cents(i as i64).mantissa())
            .collect();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn unclustered_table_keeps_insert_order() {
        let mut b = TableBuilder::new(&["v"]);
        for v in [5i64, 3, 9] {
            b.push_row(vec![Value::I64(v)]);
        }
        let t = b.build();
        assert_eq!(t.i64_slice("v"), &[5, 3, 9]);
        assert_eq!(t.clustered(), None);
    }

    #[test]
    fn compression_reports_bytes() {
        let t = sample_table(SEGMENT_ROWS);
        assert!(t.compressed_bytes() > 0);
        // Dictionary column with 2 distinct values ≈ 4 bytes/row.
        let flag_bytes = t.column("flag").compressed_bytes();
        assert!(flag_bytes < SEGMENT_ROWS * 5);
    }
}
