//! # columnstore — an in-memory compressed columnar database engine
//!
//! The stand-in for the paper's Fig 13 comparison target: SQL Server 2014's
//! in-memory columnstore. The evaluation's findings hinge on two properties
//! of such an engine, both implemented here:
//!
//! * **Columnar, compressed storage with segment elimination.** Data lives
//!   in per-column segments (dictionary encoding for strings, run-length
//!   encoding for the clustered sort column, plain arrays otherwise), each
//!   carrying min/max statistics. Predicates on the clustered columns —
//!   the paper builds clustered indexes on `l_shipdate` and `o_orderdate` —
//!   skip whole segments, which is why the RDBMS wins the date-selective
//!   queries in Fig 13.
//! * **Value-based joins.** Joins hash on key values rather than chasing
//!   references, which is why SMCs win the join-heavy queries (§7: "For
//!   join-heavy queries, they benefit from using references to perform
//!   joins instead of explicit value-based join operations").
//!
//! The TPC-H query plans over this engine live in the `tpch` crate, next to
//! their SMC counterparts.

#![warn(missing_docs)]

pub mod column;
pub mod table;

pub use column::{ColumnData, DictColumn, RleColumn, SegmentStats, SEGMENT_ROWS};
pub use table::{ColTable, TableBuilder, Value};
