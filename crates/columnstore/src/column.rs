//! Column storage: typed arrays, dictionary and run-length compression,
//! per-segment min/max statistics.

/// Rows per segment. Matches the order of magnitude of SQL Server's
/// columnstore row groups (2^20) scaled to our laptop-sized datasets so
//  that segment elimination has observable granularity.
pub const SEGMENT_ROWS: usize = 1 << 14;

/// Min/max statistics for one segment of one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentStats {
    /// Minimum encoded value in the segment.
    pub min: i64,
    /// Maximum encoded value in the segment.
    pub max: i64,
}

impl SegmentStats {
    /// True if the segment may contain values in `[lo, hi]`.
    #[inline]
    pub fn overlaps(&self, lo: i64, hi: i64) -> bool {
        self.max >= lo && self.min <= hi
    }
}

fn stats_of(values: &[i64]) -> Vec<SegmentStats> {
    values
        .chunks(SEGMENT_ROWS)
        .map(|chunk| {
            let mut min = i64::MAX;
            let mut max = i64::MIN;
            for &v in chunk {
                min = min.min(v);
                max = max.max(v);
            }
            SegmentStats { min, max }
        })
        .collect()
}

/// A dictionary-encoded string column: unique strings stored once, rows as
/// u32 codes.
#[derive(Debug, Default)]
pub struct DictColumn {
    dict: Vec<String>,
    index: std::collections::HashMap<String, u32>,
    codes: Vec<u32>,
}

impl DictColumn {
    /// An empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a value, interning it.
    pub fn push(&mut self, value: &str) {
        let code = match self.index.get(value) {
            Some(&c) => c,
            None => {
                let c = self.dict.len() as u32;
                self.dict.push(value.to_string());
                self.index.insert(value.to_string(), c);
                c
            }
        };
        self.codes.push(code);
    }

    /// The code for `value`, if interned (predicates compare codes, not
    /// strings — the dictionary-compression fast path).
    pub fn code_of(&self, value: &str) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// The string behind a code.
    pub fn decode(&self, code: u32) -> &str {
        &self.dict[code as usize]
    }

    /// The code at `row`.
    #[inline]
    pub fn code(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// The string at `row`.
    pub fn get(&self, row: usize) -> &str {
        self.decode(self.codes[row])
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Distinct values.
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }

    /// Raw code array for tight scan loops.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Approximate compressed bytes (codes + dictionary).
    pub fn compressed_bytes(&self) -> usize {
        self.codes.len() * 4 + self.dict.iter().map(|s| s.len() + 24).sum::<usize>()
    }
}

/// A run-length-encoded i64 column — effective on the clustered sort column
/// (sorted data has long runs).
#[derive(Debug, Default)]
pub struct RleColumn {
    /// (value, run end exclusive), ends strictly increasing.
    runs: Vec<(i64, u32)>,
    len: usize,
}

impl RleColumn {
    /// Encodes `values`.
    pub fn encode(values: &[i64]) -> Self {
        let mut runs = Vec::new();
        let mut i = 0usize;
        while i < values.len() {
            let v = values[i];
            let mut j = i + 1;
            while j < values.len() && values[j] == v {
                j += 1;
            }
            runs.push((v, j as u32));
            i = j;
        }
        RleColumn {
            runs,
            len: values.len(),
        }
    }

    /// The value at `row` (binary search over run ends).
    pub fn get(&self, row: usize) -> i64 {
        debug_assert!(row < self.len);
        let idx = self.runs.partition_point(|&(_, end)| end as usize <= row);
        self.runs[idx].0
    }

    /// Decodes back to a plain vector (for scans that want tight loops).
    pub fn decode(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.len);
        let mut start = 0u32;
        for &(v, end) in &self.runs {
            // repeat().take() rather than repeat_n(): the latter is 1.82+,
            // above the workspace MSRV.
            out.extend(std::iter::repeat(v).take((end - start) as usize));
            start = end;
        }
        out
    }

    /// Iterates `(value, start, end)` runs — range scans process whole runs.
    pub fn runs(&self) -> impl Iterator<Item = (i64, usize, usize)> + '_ {
        let mut start = 0usize;
        self.runs.iter().map(move |&(v, end)| {
            let s = start;
            start = end as usize;
            (v, s, end as usize)
        })
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of runs (compression effectiveness).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Compressed size in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.runs.len() * 12
    }
}

/// One column's storage.
#[derive(Debug)]
pub enum ColumnData {
    /// Plain 64-bit integers (also dates as epoch days widened to i64).
    I64 {
        /// Row values in storage order.
        values: Vec<i64>,
        /// Per-segment min/max for zone-map pruning.
        stats: Vec<SegmentStats>,
    },
    /// Fixed-point decimals (mantissa only; scale lives in the schema).
    Decimal {
        /// Raw mantissas in storage order.
        values: Vec<i128>,
    },
    /// Dictionary-encoded strings.
    Str(DictColumn),
    /// Run-length-encoded integers (clustered sort columns).
    Rle {
        /// The run-length-encoded values.
        column: RleColumn,
        /// Per-segment min/max for zone-map pruning.
        stats: Vec<SegmentStats>,
    },
}

impl ColumnData {
    /// Builds a plain integer column with segment statistics.
    pub fn i64(values: Vec<i64>) -> ColumnData {
        let stats = stats_of(&values);
        ColumnData::I64 { values, stats }
    }

    /// Builds an RLE column (use on sorted data) with segment statistics.
    pub fn rle(values: &[i64]) -> ColumnData {
        let stats = stats_of(values);
        ColumnData::Rle {
            column: RleColumn::encode(values),
            stats,
        }
    }

    /// Row count.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::I64 { values, .. } => values.len(),
            ColumnData::Decimal { values } => values.len(),
            ColumnData::Str(d) => d.len(),
            ColumnData::Rle { column, .. } => column.len(),
        }
    }

    /// True if no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-segment statistics, if this column keeps them.
    pub fn stats(&self) -> Option<&[SegmentStats]> {
        match self {
            ColumnData::I64 { stats, .. } | ColumnData::Rle { stats, .. } => Some(stats),
            _ => None,
        }
    }

    /// In-memory bytes after compression.
    pub fn compressed_bytes(&self) -> usize {
        match self {
            ColumnData::I64 { values, .. } => values.len() * 8,
            ColumnData::Decimal { values } => values.len() * 16,
            ColumnData::Str(d) => d.compressed_bytes(),
            ColumnData::Rle { column, .. } => column.compressed_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dict_interns_and_decodes() {
        let mut c = DictColumn::new();
        for s in ["a", "b", "a", "c", "b"] {
            c.push(s);
        }
        assert_eq!(c.len(), 5);
        assert_eq!(c.cardinality(), 3);
        assert_eq!(c.get(0), "a");
        assert_eq!(c.get(4), "b");
        assert_eq!(c.code(0), c.code(2));
        assert_eq!(c.code_of("c"), Some(c.code(3)));
        assert_eq!(c.code_of("zzz"), None);
    }

    #[test]
    fn rle_round_trips() {
        let values = vec![5, 5, 5, 7, 7, 9, 9, 9, 9];
        let c = RleColumn::encode(&values);
        assert_eq!(c.run_count(), 3);
        assert_eq!(c.decode(), values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(c.get(i), v);
        }
        let runs: Vec<_> = c.runs().collect();
        assert_eq!(runs, vec![(5, 0, 3), (7, 3, 5), (9, 5, 9)]);
    }

    #[test]
    fn rle_compresses_sorted_data() {
        let sorted: Vec<i64> = (0..100_000).map(|i| i / 1000).collect();
        let c = RleColumn::encode(&sorted);
        assert_eq!(c.run_count(), 100);
        assert!(c.compressed_bytes() < sorted.len() * 8 / 100);
    }

    #[test]
    fn segment_stats_enable_pruning() {
        // Sorted data: each segment has a tight range.
        let values: Vec<i64> = (0..(SEGMENT_ROWS * 3) as i64).collect();
        let col = ColumnData::i64(values);
        let stats = col.stats().unwrap();
        assert_eq!(stats.len(), 3);
        // A predicate on the top of the range overlaps only the last segment.
        let lo = (SEGMENT_ROWS * 2 + 10) as i64;
        let overlapping = stats.iter().filter(|s| s.overlaps(lo, i64::MAX)).count();
        assert_eq!(overlapping, 1);
    }

    #[test]
    fn stats_on_unsorted_data_cover_everything() {
        let values = vec![100, -5, 60];
        let col = ColumnData::i64(values);
        let s = col.stats().unwrap()[0];
        assert_eq!(s, SegmentStats { min: -5, max: 100 });
        assert!(s.overlaps(0, 0));
        assert!(!s.overlaps(101, 200));
    }
}
