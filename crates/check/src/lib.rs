//! # smc-check — deterministic bounded model checking for the SMC protocol
//!
//! A loom-style checker that runs small protocol scenarios over *virtual
//! threads* and explores their interleavings systematically, instead of
//! sampling a vanishing fraction of them the way stress tests do.
//!
//! ## How it works
//!
//! Every virtual thread is a real OS thread, but a token-passing scheduler
//! ([`sched`]) guarantees that exactly one of them runs at a time. The
//! thread holding the token reports a *switch point* before every shared
//! operation ([`switch_point`], wired to every atomic/lock/spin site of
//! `smc-memory` through its `sync` shim layer when that crate is compiled
//! with `--cfg smc_check`); at each switch point a pluggable *chooser*
//! decides which thread runs next. An execution is therefore a pure function
//! of its *schedule* — the sequence of thread choices — which makes every
//! run replayable from that schedule alone. Scheduling happens in virtual
//! time: the checker never sleeps, and spin loops immediately deschedule
//! the spinning thread instead of burning host cycles.
//!
//! The explorer ([`Checker`]) enumerates schedules with bounded-preemption
//! depth-first search: every schedule using at most
//! [`Checker::preemption_bound`] *preemptions* (switching away from a thread
//! that could have continued; forced switches are free) is visited
//! exhaustively, which empirically catches the overwhelming majority of
//! concurrency bugs at bound 2 (Musuvathi & Qadeer, CHESS). Beyond the
//! bound, seeded random sampling covers deeper schedules.
//!
//! Scenarios encode *shadow-state oracles* — assertions such as "every live
//! reference resolves to exactly one incarnation" or "a scanner visits each
//! object exactly once under concurrent compaction" — and a failing schedule
//! is printed as a replayable seed string:
//!
//! ```text
//! violation: reader pinned at 0 observed global 2 ...
//! replayable schedule seed: 0.1.1.1.0
//! ```
//!
//! Re-running the scenario through [`Checker::replay`] with that seed
//! reproduces the failure deterministically.
//!
//! ## Protocol scenarios and mutation testing
//!
//! The protocol scenario suite (`scenarios`, compiled only under
//! `--cfg smc_check`) drives the *real* `smc-memory` code — epoch
//! pin/unpin/advance, relocation, forwarding, bail-out, and the OOM recovery
//! ladder. `smc-memory`'s `mutation` module can re-introduce known, fixed
//! bugs (e.g. the slot-vs-entry incarnation confusion found in PR 1) at
//! runtime; `tests/protocol.rs` asserts that the checker finds every one of
//! them within its interleaving budget.
//!
//! Run the checker's own tests with `cargo test -p smc-check`; run the
//! protocol suite with `RUSTFLAGS='--cfg smc_check' cargo test -p smc-check`.

#![warn(missing_docs)]

pub mod explore;
#[cfg(smc_check)]
pub mod scenarios;
pub mod sched;

pub use explore::{Checker, ExploreStats, Schedule, Violation};
pub use sched::{switch_point, Scenario};

/// Routes `smc-memory`'s instrumented sync shims into the scheduler.
/// Idempotent; called automatically by [`Checker::check`].
pub fn install_memory_hook() {
    smc_memory::sync::hook::install(memory_hook);
}

fn memory_hook(event: smc_memory::sync::hook::HookEvent) {
    switch_point(matches!(event, smc_memory::sync::hook::HookEvent::Spin));
}
