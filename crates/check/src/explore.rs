//! Bounded-preemption DFS exploration plus seeded random sampling.
//!
//! The explorer repeatedly runs a scenario under scripted schedules. After
//! each passing execution it extends its decision tree with the trace's
//! newly-discovered suffix, then backtracks to the deepest decision with an
//! untried alternative whose cost fits the preemption bound. Once the bounded
//! tree is exhausted (or the execution cap is hit), a seeded random phase
//! samples schedules beyond the bound.

use crate::sched::{run_execution, Decision, Scenario};
use smc_util::rng::Pcg32;

/// Picks the next thread to run at a switch point.
///
/// Implementations must return a member of `enabled` (which is never empty).
pub trait Chooser {
    /// `enabled` — threads eligible to run; `current` — the token holder;
    /// `current_enabled` — whether continuing `current` is possible (picking
    /// anything else then counts as a preemption).
    fn choose(&mut self, enabled: &[usize], current: usize, current_enabled: bool) -> usize;
}

/// The canonical "no preemption" choice: keep running `current` if possible,
/// otherwise fall to the lowest-id enabled thread.
fn default_choice(enabled: &[usize], current: usize, current_enabled: bool) -> usize {
    if current_enabled && enabled.contains(&current) {
        current
    } else {
        enabled[0]
    }
}

/// Replays a fixed schedule prefix, then continues with default choices.
/// Scripted entries that are not enabled fall back to the default choice —
/// permissive, so slightly-divergent replays still terminate.
struct ScriptedChooser {
    script: Vec<usize>,
    pos: usize,
}

impl Chooser for ScriptedChooser {
    fn choose(&mut self, enabled: &[usize], current: usize, current_enabled: bool) -> usize {
        let pick = self.script.get(self.pos).copied();
        self.pos += 1;
        match pick {
            Some(t) if enabled.contains(&t) => t,
            _ => default_choice(enabled, current, current_enabled),
        }
    }
}

/// Seeded random chooser for the beyond-bound sampling phase. Biased towards
/// continuing the current thread so schedules stay long enough to make
/// progress while still preempting often.
struct RandomChooser {
    rng: Pcg32,
}

impl Chooser for RandomChooser {
    fn choose(&mut self, enabled: &[usize], current: usize, current_enabled: bool) -> usize {
        if current_enabled && enabled.contains(&current) && self.rng.gen_bool(0.7) {
            return current;
        }
        enabled[self.rng.gen_range(0..enabled.len())]
    }
}

/// A replayable schedule: the sequence of threads chosen at successive switch
/// points. Printable as a dot-separated seed string (`0.1.1.0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule(pub Vec<usize>);

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for t in &self.0 {
            if !first {
                write!(f, ".")?;
            }
            write!(f, "{t}")?;
            first = false;
        }
        Ok(())
    }
}

impl std::str::FromStr for Schedule {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<Schedule, Self::Err> {
        if s.is_empty() {
            return Ok(Schedule(Vec::new()));
        }
        s.split('.')
            .map(str::parse)
            .collect::<Result<Vec<usize>, _>>()
            .map(Schedule)
    }
}

/// A property violation found by the checker: the failure message plus the
/// schedule that triggers it deterministically.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The panic/assertion message from the failing execution.
    pub message: String,
    /// The full schedule of the failing execution — feed to
    /// [`Checker::replay`] to reproduce.
    pub schedule: Schedule,
    /// Executions run before the violation was found.
    pub executions: usize,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation: {}", self.message)?;
        writeln!(f, "found after {} execution(s)", self.executions)?;
        write!(f, "replayable schedule seed: {}", self.schedule)
    }
}

/// Exploration statistics for a completed (violation-free) check.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreStats {
    /// Total executions run (DFS + random phases).
    pub executions: usize,
    /// Whether the bounded DFS tree was fully exhausted (as opposed to the
    /// execution cap cutting it short).
    pub exhausted: bool,
    /// Deepest trace observed, in decisions.
    pub max_depth: usize,
}

/// One node of the DFS decision tree, mirroring a recorded [`Decision`].
struct Node {
    /// Alternatives in exploration order: the originally-chosen thread first,
    /// then the remaining enabled threads.
    alternatives: Vec<usize>,
    /// `costs_preemption[i]` — whether picking `alternatives[i]` at this
    /// point preempts a runnable current thread.
    costs_preemption: Vec<bool>,
    /// Index (into `alternatives`) taken on the path currently in the tree.
    taken: usize,
    /// Next alternative index to try when backtracking through this node.
    next_alt: usize,
    /// Preemptions spent by the path *before* this node.
    preemptions_before: usize,
}

impl Node {
    fn from_decision(d: &Decision, preemptions_before: usize) -> Node {
        let mut alternatives = vec![d.chosen];
        let mut costs_preemption = vec![d.current_enabled && d.chosen != d.current];
        for &t in &d.enabled {
            if t != d.chosen {
                alternatives.push(t);
                costs_preemption.push(d.current_enabled && t != d.current);
            }
        }
        Node {
            alternatives,
            costs_preemption,
            taken: 0,
            next_alt: 1,
            preemptions_before,
        }
    }

    fn cost_of_taken(&self) -> usize {
        usize::from(self.costs_preemption[self.taken])
    }
}

/// The bounded model checker. Construct with [`Checker::new`], tweak the
/// public knobs, then call [`Checker::check`] with a scenario factory.
#[derive(Debug, Clone)]
pub struct Checker {
    /// Maximum preemptions per schedule explored exhaustively (CHESS-style).
    pub preemption_bound: usize,
    /// Per-execution step budget; exceeding it aborts the execution with a
    /// "step budget exceeded" violation (livelock detector).
    pub max_steps: usize,
    /// Cap on DFS executions (the bounded tree can be large for chatty
    /// scenarios); the random phase still runs afterwards.
    pub max_executions: usize,
    /// Number of seeded random executions beyond the bound.
    pub random_iterations: usize,
    /// Base seed for the random phase (iteration `i` uses `seed + i`).
    pub seed: u64,
}

impl Default for Checker {
    fn default() -> Checker {
        Checker {
            preemption_bound: 2,
            max_steps: 20_000,
            max_executions: 100_000,
            random_iterations: 200,
            seed: 0xC0FFEE,
        }
    }
}

impl Checker {
    /// A checker with the default budget (preemption bound 2, 20k steps,
    /// 100k DFS executions, 200 random samples).
    pub fn new() -> Checker {
        Checker::default()
    }

    /// Explores `make`'s scenario. Returns `Ok(stats)` if no schedule within
    /// budget violates the oracle, or `Err(violation)` with a replayable
    /// schedule on the first failure.
    ///
    /// `make` is called once per execution and must produce a fresh,
    /// self-contained scenario (fresh shared state and shadow state).
    pub fn check(&self, make: impl Fn() -> Scenario) -> Result<ExploreStats, Box<Violation>> {
        crate::install_memory_hook();
        let mut stats = ExploreStats::default();
        let mut nodes: Vec<Node> = Vec::new();
        let mut prefix: Vec<usize> = Vec::new();
        loop {
            if stats.executions >= self.max_executions {
                break;
            }
            let scenario = make();
            let outcome = run_execution(
                scenario.threads,
                scenario.finale,
                Box::new(ScriptedChooser {
                    script: prefix.clone(),
                    pos: 0,
                }),
                self.max_steps,
            );
            stats.executions += 1;
            stats.max_depth = stats.max_depth.max(outcome.trace.len());
            if let Some(message) = outcome.failure {
                return Err(Box::new(Violation {
                    message,
                    schedule: Schedule(outcome.trace.iter().map(|d| d.chosen).collect()),
                    executions: stats.executions,
                }));
            }
            // Grow the tree with the suffix this execution discovered.
            let mut preemptions = nodes.iter().map(Node::cost_of_taken).sum::<usize>();
            for d in &outcome.trace[nodes.len().min(outcome.trace.len())..] {
                let node = Node::from_decision(d, preemptions);
                preemptions += node.cost_of_taken();
                nodes.push(node);
            }
            // Backtrack: deepest node with an affordable untried alternative.
            if !self.advance(&mut nodes, &mut prefix) {
                stats.exhausted = true;
                break;
            }
        }
        // Random sampling beyond the bound.
        for i in 0..self.random_iterations {
            let scenario = make();
            let outcome = run_execution(
                scenario.threads,
                scenario.finale,
                Box::new(RandomChooser {
                    rng: Pcg32::seed_from_u64(self.seed.wrapping_add(i as u64)),
                }),
                self.max_steps,
            );
            stats.executions += 1;
            stats.max_depth = stats.max_depth.max(outcome.trace.len());
            if let Some(message) = outcome.failure {
                return Err(Box::new(Violation {
                    message,
                    schedule: Schedule(outcome.trace.iter().map(|d| d.chosen).collect()),
                    executions: stats.executions,
                }));
            }
        }
        Ok(stats)
    }

    /// Picks the next DFS path. Returns `false` when the bounded tree is
    /// exhausted. On success, `nodes` is truncated at the branch point and
    /// `prefix` holds the scripted schedule for the next execution.
    fn advance(&self, nodes: &mut Vec<Node>, prefix: &mut Vec<usize>) -> bool {
        while let Some(last) = nodes.last_mut() {
            let budget = self.preemption_bound;
            let mut advanced = false;
            while last.next_alt < last.alternatives.len() {
                let alt = last.next_alt;
                last.next_alt += 1;
                let cost = usize::from(last.costs_preemption[alt]);
                if last.preemptions_before + cost <= budget {
                    last.taken = alt;
                    advanced = true;
                    break;
                }
            }
            if advanced {
                prefix.clear();
                prefix.extend(nodes.iter().map(|n| n.alternatives[n.taken]));
                return true;
            }
            nodes.pop();
        }
        false
    }

    /// Replays a specific schedule once (no exploration). Returns the failure
    /// message if the oracle fires, `None` if the execution passes — replay
    /// of a schedule reported by [`Checker::check`] must reproduce its
    /// violation deterministically.
    pub fn replay(&self, schedule: &Schedule, make: impl Fn() -> Scenario) -> Option<String> {
        crate::install_memory_hook();
        let scenario = make();
        let outcome = run_execution(
            scenario.threads,
            scenario.finale,
            Box::new(ScriptedChooser {
                script: schedule.0.clone(),
                pos: 0,
            }),
            self.max_steps,
        );
        outcome.failure
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_roundtrips_through_display() {
        let s = Schedule(vec![0, 1, 1, 2, 0]);
        let parsed: Schedule = s.to_string().parse().unwrap();
        assert_eq!(parsed, s);
        let empty: Schedule = "".parse().unwrap();
        assert_eq!(empty, Schedule(vec![]));
    }

    #[test]
    fn default_choice_prefers_current() {
        assert_eq!(default_choice(&[0, 1, 2], 1, true), 1);
        assert_eq!(default_choice(&[0, 2], 1, false), 0);
    }
}
