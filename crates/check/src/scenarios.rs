//! Protocol scenarios: small, fully-checkable concurrent workloads over the
//! *real* `smc-memory` protocol code, each with a shadow-state oracle.
//!
//! Every scenario factory builds a fresh world (epoch manager / blocks /
//! indirection entries) plus shadow state kept in *uninstrumented* `std`
//! types — shadow bookkeeping must not create interleaving points of its own.
//! The oracle runs either inline (asserts inside thread bodies) or as a
//! single-threaded finale once all virtual threads finished.
//!
//! The oracles encode the §3/§5 safety contracts:
//!
//! * **pin/advance** — while a thread is pinned at epoch `e`, the global
//!   epoch never exceeds `e + 1` (otherwise memory freed inside the reader's
//!   grace period could already be reused under it).
//! * **free/freeze** — a freed slot ends with its counter bumped exactly once
//!   and no leaked compaction flags, no matter how `free` races a freeze.
//! * **relocation** — every live reference resolves to exactly one
//!   incarnation in exactly one location: one winner per move, slot-side
//!   counters survive relocation, bailed-out objects are unfrozen.
//! * **§5.2 visitation** — a scanner visits each live object exactly once
//!   under concurrent compaction.
//! * **budget** — the block budget is exact under racing allocators, and the
//!   OOM recovery ladder neither leaks budget nor double-frees.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use smc_memory::block::{type_id_of, BlockLayout, BlockRef, BLOCK_SIZE};
use smc_memory::epoch::EpochManager;
use smc_memory::incarnation::{IncWord, FLAG_FORWARD, FLAG_FROZEN, FLAG_LOCK, FLAG_MASK, INC_MASK};
use smc_memory::indirection::{EntryRef, IndirectionTable};
use smc_memory::reloc::{
    bail_out_relocation, cancel_relocation, try_move_object, MoveOutcome, RelocEntry, RelocStatus,
    RelocationList,
};
use smc_memory::runtime::Runtime;
use smc_memory::slot::SlotState;
use smc_memory::stats::MemoryStats;

use crate::sched::Scenario;

/// A named scenario factory, as listed by [`all`].
pub type NamedScenario = (&'static str, fn() -> Scenario);

/// Name → factory for every protocol scenario, for exhaustive sweeps.
pub fn all() -> Vec<NamedScenario> {
    vec![
        ("pin_vs_advance", pin_vs_advance as fn() -> Scenario),
        ("free_vs_freeze", free_vs_freeze),
        ("double_mover", double_mover),
        ("move_vs_bail", move_vs_bail),
        ("cancel_vs_inflight_move", cancel_vs_inflight_move),
        ("slot_vs_entry_incarnation", slot_vs_entry_incarnation),
        ("exactly_once_visitation", exactly_once_visitation),
        ("budget_race", budget_race),
        ("snapshot_vs_advance", snapshot_vs_advance),
        ("remote_free_vs_owner_pop", remote_free_vs_owner_pop),
    ]
}

/// A reader pins while another thread drives the epoch forward. Oracle: the
/// reader, while pinned at `e`, never observes a global epoch above `e + 1`
/// (§3.4 — this is exactly the bound that makes "free at `e`, reuse at
/// `e + 2`" safe). Catches [`smc_memory::mutation::Mutation::NoPublishRecheck`]
/// and [`smc_memory::mutation::Mutation::AdvanceIgnoresPinned`].
pub fn pin_vs_advance() -> Scenario {
    let mgr = EpochManager::new();
    let reader_mgr = mgr.clone();
    Scenario::new()
        .thread(move || {
            let guard = reader_mgr.pin();
            let pinned = guard.epoch();
            let global = reader_mgr.global_epoch();
            assert!(
                global <= pinned + 1,
                "reader pinned at epoch {pinned} observed global epoch {global}: \
                 memory freed during its grace period may already be reused"
            );
            drop(guard);
        })
        .thread(move || {
            let _ = mgr.try_advance();
            let _ = mgr.try_advance();
        })
}

/// The memory observatory's capture sequence (pin → read epoch begin → walk
/// → read min-pinned → read epoch end) races an epoch-advancing thread.
/// Oracle: the snapshot's watermark invariant — both epoch reads, taken
/// while pinned at `e`, are bounded by `e + 1`, and the min-pinned gauge
/// never reports an epoch above the snapshotter's own pin (the snapshot *is*
/// a pinned reader, so it bounds the minimum from above). This is exactly
/// the `Watermark::consistent()` contract `HeapSnapshot::try_capture`
/// asserts over a live heap; here it is swept over every interleaving.
pub fn snapshot_vs_advance() -> Scenario {
    let mgr = EpochManager::new();
    let snap_mgr = mgr.clone();
    Scenario::new()
        .thread(move || {
            // HeapSnapshot::try_capture, reduced to its epoch reads.
            let guard = snap_mgr.pin();
            let pinned = guard.epoch();
            let begin = snap_mgr.global_epoch();
            let min_pinned = snap_mgr.min_pinned_epoch();
            let lag = snap_mgr.epoch_lag();
            let end = snap_mgr.global_epoch();
            assert!(
                begin <= pinned + 1 && end <= pinned + 1,
                "snapshot pinned at {pinned} watermarked [{begin}, {end}]: \
                 blocks walked by the snapshot could already be reused"
            );
            let min = min_pinned.expect("snapshotter itself is pinned");
            assert!(
                min <= pinned,
                "min-pinned gauge ({min}) passed over the snapshotter's own \
                 pin ({pinned})"
            );
            assert!(
                min + lag >= begin,
                "epoch lag {lag} inconsistent with min-pinned {min} and \
                 global {begin}"
            );
            drop(guard);
        })
        .thread(move || {
            let _ = mgr.try_advance();
            let _ = mgr.try_advance();
        })
}

/// `free` (counter bump) races a compaction freeze on one incarnation word.
/// Oracle: the counter lands on exactly 1 and no flag survives — a freeze
/// that lost the race must have been rejected (stale counter) or cleared by
/// the bump (§5.1 footnote: free uses CAS for precisely this race).
pub fn free_vs_freeze() -> Scenario {
    let word = Arc::new(IncWord::new(0));
    let freer = word.clone();
    let freezer = word.clone();
    Scenario::new()
        .thread(move || {
            let _ = freer.bump();
        })
        .thread(move || {
            let _ = freezer.try_set_flag(0, FLAG_FROZEN);
        })
        .finally(move || {
            let end = word.load(Ordering::SeqCst);
            assert_eq!(
                end & INC_MASK,
                1,
                "free must land exactly once (word {end:#010x})"
            );
            assert_eq!(
                end & FLAG_MASK,
                0,
                "no compaction flag may survive a free (word {end:#010x})"
            );
        })
}

const SRC_SLOT: u32 = 3;
const DEST_SLOT: u32 = 7;

/// A frozen object wired for relocation: source + destination blocks, one
/// indirection entry, one pending [`RelocEntry`] installed in the source
/// block's header list.
struct MoveFixture {
    src: BlockRef,
    dst: BlockRef,
    entry: EntryRef,
    reloc: Arc<RelocEntry>,
    /// Keeps the entry's backing storage alive for the scenario's duration.
    table: Arc<IndirectionTable>,
}

fn move_fixture(value: u64, slot_counter: u32) -> MoveFixture {
    let layout = BlockLayout::rows_of::<u64>().expect("u64 fits a block");
    let src = BlockRef::allocate(&layout, type_id_of::<u64>(), 1).expect("alloc src");
    let dst = BlockRef::allocate(&layout, type_id_of::<u64>(), 1).expect("alloc dst");
    let table = Arc::new(IndirectionTable::new());
    let entry = table.allocate(0);
    unsafe { src.obj_ptr(SRC_SLOT).cast::<u64>().write(value) };
    // The slot-side incarnation is an independent counter from the entry's;
    // seeding it differently is what makes counter confusion detectable.
    src.slot_inc(SRC_SLOT)
        .store(slot_counter, Ordering::Release);
    src.slot_word(SRC_SLOT).set_valid();
    src.back_ptr(SRC_SLOT)
        .store(entry.addr(), Ordering::Release);
    src.header().valid_count.fetch_add(1, Ordering::Relaxed);
    entry
        .get()
        .store_payload(src.obj_ptr(SRC_SLOT) as usize, Ordering::Release);
    // Freezing epoch work (§5.1): freeze both incarnation words and publish
    // the relocation list through the source header.
    assert!(entry.get().inc().try_set_flag(0, FLAG_FROZEN));
    assert!(src
        .slot_inc(SRC_SLOT)
        .try_set_flag(slot_counter, FLAG_FROZEN));
    let reloc = Arc::new(RelocEntry::new(
        SRC_SLOT,
        entry.addr(),
        0,
        dst.obj_ptr(DEST_SLOT) as usize,
        DEST_SLOT,
    ));
    let list = Box::new(RelocationList::new(
        std::mem::size_of::<u64>() as u32,
        Vec::new(),
    ));
    src.header()
        .reloc_list
        .store(Box::into_raw(list), Ordering::Release);
    MoveFixture {
        src,
        dst,
        entry,
        reloc,
        table,
    }
}

/// Two movers race to execute the same relocation (compaction thread vs a
/// §5.1-case-c helping reader). Oracle: exactly one `MovedByUs`, the
/// destination counts the object exactly once, and the source is a clean
/// forwarding tombstone — i.e. no reader can observe a moved-then-reused
/// slot as live. Catches [`smc_memory::mutation::Mutation::MoveSkipsLock`].
pub fn double_mover() -> Scenario {
    let fx = move_fixture(4242, 0);
    let outcomes = Arc::new(Mutex::new(Vec::new()));
    let (src, dst, entry, reloc) = (fx.src, fx.dst, fx.entry, fx.reloc.clone());
    let mut scenario = Scenario::new();
    for _ in 0..2 {
        let reloc = reloc.clone();
        let outcomes = outcomes.clone();
        let table = fx.table.clone();
        scenario = scenario.thread(move || {
            let outcome = unsafe { try_move_object(src, &reloc) };
            outcomes.lock().unwrap().push(outcome);
            drop(table);
        });
    }
    let table = fx.table;
    scenario.finally(move || {
        let outcomes = outcomes.lock().unwrap();
        let winners = outcomes
            .iter()
            .filter(|o| **o == MoveOutcome::MovedByUs)
            .count();
        assert_eq!(
            winners, 1,
            "exactly one mover must win the relocation, got {outcomes:?}"
        );
        assert_eq!(reloc.status(), RelocStatus::Succeeded);
        assert_eq!(unsafe { dst.obj_ptr(DEST_SLOT).cast::<u64>().read() }, 4242);
        assert_eq!(dst.slot_word(DEST_SLOT).state(), SlotState::Valid);
        assert_eq!(
            dst.header().valid_count.load(Ordering::SeqCst),
            1,
            "destination must count the object exactly once"
        );
        assert_eq!(
            entry.get().load_payload(Ordering::SeqCst),
            dst.obj_ptr(DEST_SLOT) as usize,
            "the indirection entry must resolve to the new location"
        );
        let src_word = src.slot_inc(SRC_SLOT).load(Ordering::SeqCst);
        assert_ne!(
            src_word & FLAG_FORWARD,
            0,
            "source slot must be a forwarding tombstone"
        );
        assert_eq!(src_word & (FLAG_FROZEN | FLAG_LOCK), 0);
        unsafe {
            src.deallocate();
            dst.deallocate();
        }
        drop(table);
    })
}

/// A mover races a reader that bails the relocation out (§5.1 case b).
/// Oracle: whichever side wins, the world is consistent — a successful move
/// leaves a forwarding source and a valid destination; a bail-out leaves the
/// object in place with the freeze fully stripped so readers stop taking the
/// slow path. Catches [`smc_memory::mutation::Mutation::BailKeepsFrozen`].
pub fn move_vs_bail() -> Scenario {
    let fx = move_fixture(77, 0);
    let (src, dst, entry, reloc) = (fx.src, fx.dst, fx.entry, fx.reloc.clone());
    let mover_reloc = reloc.clone();
    let bailer_reloc = reloc.clone();
    let mover_table = fx.table.clone();
    let bailer_table = fx.table.clone();
    let table = fx.table;
    Scenario::new()
        .thread(move || {
            let _ = unsafe { try_move_object(src, &mover_reloc) };
            drop(mover_table);
        })
        .thread(move || {
            let _ = unsafe { bail_out_relocation(src, &bailer_reloc) };
            drop(bailer_table);
        })
        .finally(move || {
            match reloc.status() {
                RelocStatus::Succeeded => {
                    assert_eq!(unsafe { dst.obj_ptr(DEST_SLOT).cast::<u64>().read() }, 77);
                    assert_eq!(dst.slot_word(DEST_SLOT).state(), SlotState::Valid);
                    assert_eq!(
                        entry.get().load_payload(Ordering::SeqCst),
                        dst.obj_ptr(DEST_SLOT) as usize
                    );
                    let src_word = src.slot_inc(SRC_SLOT).load(Ordering::SeqCst);
                    assert_ne!(src_word & FLAG_FORWARD, 0);
                    assert_eq!(src_word & (FLAG_FROZEN | FLAG_LOCK), 0);
                }
                RelocStatus::Failed => {
                    // Bail-out won: object stays put, fully thawed.
                    assert_eq!(src.slot_word(SRC_SLOT).state(), SlotState::Valid);
                    assert_eq!(unsafe { src.obj_ptr(SRC_SLOT).cast::<u64>().read() }, 77);
                    let src_word = src.slot_inc(SRC_SLOT).load(Ordering::SeqCst);
                    assert_eq!(
                        src_word & FLAG_FROZEN,
                        0,
                        "bailed-out relocation left the source slot frozen: \
                         readers would wedge on the §5.1 slow path forever"
                    );
                    assert_eq!(src_word & FLAG_LOCK, 0);
                    assert_eq!(
                        entry.get().inc().load(Ordering::SeqCst) & FLAG_MASK,
                        0,
                        "bail-out must strip the entry-side freeze too"
                    );
                    assert_eq!(
                        entry.get().load_payload(Ordering::SeqCst),
                        src.obj_ptr(SRC_SLOT) as usize
                    );
                    assert_eq!(dst.header().valid_count.load(Ordering::SeqCst), 0);
                }
                RelocStatus::Pending => panic!("relocation never settled"),
            }
            unsafe {
                src.deallocate();
                dst.deallocate();
            }
            drop(table);
        })
}

/// The maintenance coordinator's quiesce/cancel rollback races a mover still
/// executing the pass being cancelled (the `Coordinator::cancel` path:
/// `request_compaction_cancel` → pass epilogue rolls every pending
/// relocation back through [`cancel_relocation`]). Oracle: cancel is
/// *exact* — whichever side settles the entry, the world reconciles
/// bit-exact. A completed move leaves a forwarding source and valid
/// destination; a cancelled move leaves the object in place with freeze and
/// lock fully stripped on both the slot and the entry, exactly as
/// `Smc::verify` demands after `quiesce()`/`cancel()`. Catches
/// [`smc_memory::mutation::Mutation::CancelSkipsBailRollback`].
pub fn cancel_vs_inflight_move() -> Scenario {
    let fx = move_fixture(5150, 0);
    let (src, dst, entry, reloc) = (fx.src, fx.dst, fx.entry, fx.reloc.clone());
    let mover_reloc = reloc.clone();
    let canceller_reloc = reloc.clone();
    let mover_table = fx.table.clone();
    let canceller_table = fx.table.clone();
    let table = fx.table;
    Scenario::new()
        .thread(move || {
            // The worker thread mid-pass, moving the entry.
            let _ = unsafe { try_move_object(src, &mover_reloc) };
            drop(mover_table);
        })
        .thread(move || {
            // The cancelled pass's epilogue, rolling the entry back.
            let _ = unsafe { cancel_relocation(src, &canceller_reloc) };
            drop(canceller_table);
        })
        .finally(move || {
            match reloc.status() {
                RelocStatus::Succeeded => {
                    // The move beat the cancel: normal post-move state.
                    assert_eq!(unsafe { dst.obj_ptr(DEST_SLOT).cast::<u64>().read() }, 5150);
                    assert_eq!(dst.slot_word(DEST_SLOT).state(), SlotState::Valid);
                    assert_eq!(
                        entry.get().load_payload(Ordering::SeqCst),
                        dst.obj_ptr(DEST_SLOT) as usize
                    );
                    let src_word = src.slot_inc(SRC_SLOT).load(Ordering::SeqCst);
                    assert_ne!(src_word & FLAG_FORWARD, 0);
                    assert_eq!(src_word & (FLAG_FROZEN | FLAG_LOCK), 0);
                }
                RelocStatus::Failed => {
                    // Cancel won: the object must stay put, fully thawed, so
                    // a later pass can retry it and verify reconciles now.
                    assert_eq!(src.slot_word(SRC_SLOT).state(), SlotState::Valid);
                    assert_eq!(unsafe { src.obj_ptr(SRC_SLOT).cast::<u64>().read() }, 5150);
                    let src_word = src.slot_inc(SRC_SLOT).load(Ordering::SeqCst);
                    assert_eq!(
                        src_word & FLAG_FROZEN,
                        0,
                        "cancelled relocation left the source slot frozen: \
                         the quiesced heap would fail Smc::verify and readers \
                         would wedge on the §5.1 slow path"
                    );
                    assert_eq!(src_word & FLAG_LOCK, 0);
                    assert_eq!(
                        entry.get().inc().load(Ordering::SeqCst) & FLAG_MASK,
                        0,
                        "cancel must strip the entry-side freeze too"
                    );
                    assert_eq!(
                        entry.get().load_payload(Ordering::SeqCst),
                        src.obj_ptr(SRC_SLOT) as usize
                    );
                    assert_eq!(dst.header().valid_count.load(Ordering::SeqCst), 0);
                }
                RelocStatus::Pending => panic!("cancelled relocation never settled"),
            }
            unsafe {
                src.deallocate();
                dst.deallocate();
            }
            drop(table);
        })
}

/// The slot-side incarnation counter (seeded to 5) differs from the
/// entry-side counter (0). A mover relocates the object while a direct-
/// pointer reader validates against the slot side and chases the forwarding
/// tombstone. Oracle: the *slot* counter is what survives at the destination
/// (§6 — direct references embed the slot counter). Catches the original
/// PR 1 bug re-introduced as
/// [`smc_memory::mutation::Mutation::SlotVsEntryInc`].
pub fn slot_vs_entry_incarnation() -> Scenario {
    const SLOT_COUNTER: u32 = 5;
    let fx = move_fixture(9001, SLOT_COUNTER);
    let (src, dst, reloc) = (fx.src, fx.dst, fx.reloc.clone());
    let mover_table = fx.table.clone();
    let table = fx.table;
    Scenario::new()
        .thread(move || {
            let outcome = unsafe { try_move_object(src, &reloc) };
            assert_eq!(outcome, MoveOutcome::MovedByUs);
            drop(mover_table);
        })
        .thread(move || {
            // A direct reference holds (slot address, counter 5). If it finds
            // the slot forwarded, revalidation at the destination must still
            // succeed against counter 5.
            let word = src.slot_inc(SRC_SLOT).load(Ordering::SeqCst);
            if word & FLAG_FORWARD != 0 {
                let dest_word = dst.slot_inc(DEST_SLOT).load(Ordering::SeqCst);
                assert_eq!(
                    dest_word & INC_MASK,
                    SLOT_COUNTER,
                    "direct reference (slot counter {SLOT_COUNTER}) no longer validates \
                     after relocation: destination got counter {}",
                    dest_word & INC_MASK
                );
            } else {
                assert_eq!(
                    word & INC_MASK,
                    SLOT_COUNTER,
                    "unmoved slot counter changed under a live reference"
                );
            }
        })
        .finally(move || {
            let dest_word = dst.slot_inc(DEST_SLOT).load(Ordering::SeqCst);
            assert_eq!(
                dest_word & INC_MASK,
                SLOT_COUNTER,
                "relocation must install the slot-side incarnation at the destination \
                 (entry-side counter is an independent sequence)"
            );
            let src_word = src.slot_inc(SRC_SLOT).load(Ordering::SeqCst);
            assert_eq!(
                src_word & INC_MASK,
                SLOT_COUNTER,
                "forwarding tombstone must keep the slot counter for direct readers"
            );
            unsafe {
                src.deallocate();
                dst.deallocate();
            }
            drop(table);
        })
}

const VISIT_OBJECTS: u32 = 3;

/// §5.2's query-counter protocol: a scanner and a compacting mover race over
/// a block of three objects. The scanner increments the block's
/// `query_counter` and then checks `compacting`; the mover sets `compacting`
/// and then waits for the counter to drain before moving anything. Oracle:
/// the scanner visits every object **exactly once** — never zero (lost under
/// the move) and never twice (seen at both source and destination).
pub fn exactly_once_visitation() -> Scenario {
    let layout = BlockLayout::rows_of::<u64>().expect("u64 fits a block");
    let src = BlockRef::allocate(&layout, type_id_of::<u64>(), 1).expect("alloc src");
    let dst = BlockRef::allocate(&layout, type_id_of::<u64>(), 1).expect("alloc dst");
    let table = Arc::new(IndirectionTable::new());
    let mut entry_addrs = Vec::new();
    let mut relocs = Vec::new();
    for slot in 0..VISIT_OBJECTS {
        let entry = table.allocate(0);
        unsafe {
            src.obj_ptr(slot)
                .cast::<u64>()
                .write(1000 + u64::from(slot))
        };
        src.slot_word(slot).set_valid();
        src.back_ptr(slot).store(entry.addr(), Ordering::Release);
        src.header().valid_count.fetch_add(1, Ordering::Relaxed);
        entry
            .get()
            .store_payload(src.obj_ptr(slot) as usize, Ordering::Release);
        assert!(entry.get().inc().try_set_flag(0, FLAG_FROZEN));
        assert!(src.slot_inc(slot).try_set_flag(0, FLAG_FROZEN));
        entry_addrs.push(entry.addr());
        relocs.push(RelocEntry::new(
            slot,
            entry.addr(),
            0,
            dst.obj_ptr(slot) as usize,
            slot,
        ));
    }
    let list = Box::new(RelocationList::new(
        std::mem::size_of::<u64>() as u32,
        relocs,
    ));
    src.header()
        .reloc_list
        .store(Box::into_raw(list), Ordering::Release);

    let done = Arc::new(AtomicBool::new(false));
    let visited = Arc::new(Mutex::new(Vec::new()));
    let mover_done = done.clone();
    let mover_table = table.clone();
    let scan_visited = visited.clone();
    let scan_table = table.clone();
    Scenario::new()
        .thread(move || {
            // Mover (§5.2): announce, wait for in-flight scans, then move.
            src.header().compacting.store(1, Ordering::SeqCst);
            while src.header().query_counter.load(Ordering::SeqCst) != 0 {
                smc_memory::sync::cpu_relax();
            }
            let list = unsafe { &*src.header().reloc_list.load(Ordering::SeqCst) };
            for reloc in &list.entries {
                let outcome = unsafe { try_move_object(src, reloc) };
                assert_eq!(outcome, MoveOutcome::MovedByUs);
            }
            mover_done.store(true, Ordering::SeqCst);
            drop(mover_table);
        })
        .thread(move || {
            // Scanner (§5.2): register, then check whether compaction won.
            src.header().query_counter.fetch_add(1, Ordering::SeqCst);
            if src.header().compacting.load(Ordering::SeqCst) != 0 {
                // Too late: retract the pin and rescan after the move. Any
                // bailed-out straggler would still be Valid at the source.
                src.header().query_counter.fetch_sub(1, Ordering::SeqCst);
                while !done.load(Ordering::SeqCst) {
                    smc_memory::sync::cpu_relax();
                }
                for slot in 0..VISIT_OBJECTS {
                    if dst.slot_word(slot).state() == SlotState::Valid {
                        scan_visited
                            .lock()
                            .unwrap()
                            .push(dst.back_ptr(slot).load(Ordering::SeqCst));
                    }
                    if src.slot_word(slot).state() == SlotState::Valid {
                        scan_visited
                            .lock()
                            .unwrap()
                            .push(src.back_ptr(slot).load(Ordering::SeqCst));
                    }
                }
            } else {
                // We won: the counter holds the mover off until we finish.
                for slot in 0..VISIT_OBJECTS {
                    if src.slot_word(slot).state() == SlotState::Valid {
                        scan_visited
                            .lock()
                            .unwrap()
                            .push(src.back_ptr(slot).load(Ordering::SeqCst));
                    }
                }
                src.header().query_counter.fetch_sub(1, Ordering::SeqCst);
            }
            drop(scan_table);
        })
        .finally(move || {
            let mut seen = visited.lock().unwrap().clone();
            seen.sort_unstable();
            let mut expected = entry_addrs.clone();
            expected.sort_unstable();
            assert_eq!(
                seen, expected,
                "scanner must visit each live object exactly once under \
                 concurrent compaction (missing = lost, duplicate = double-seen)"
            );
            unsafe {
                src.deallocate();
                dst.deallocate();
            }
            drop(table);
        })
}

/// Two allocators race a one-block budget; the loser walks the OOM recovery
/// ladder (graveyard drain → emergency epoch advance → backoff). Oracle:
/// budget enforcement is exact (one winner) and the `blocks_live` gauge
/// matches reality — failed attempts must not leak budget.
pub fn budget_race() -> Scenario {
    let rt = Runtime::with_budget(Some(BLOCK_SIZE as u64));
    let layout = BlockLayout::rows_of::<u64>().expect("u64 fits a block");
    let results = Arc::new(Mutex::new(Vec::new()));
    let mut scenario = Scenario::new();
    for _ in 0..2 {
        let rt = rt.clone();
        let results = results.clone();
        scenario = scenario.thread(move || {
            let outcome = rt.allocate_block(&layout, type_id_of::<u64>(), 1);
            results.lock().unwrap().push(outcome.ok());
        });
    }
    scenario.finally(move || {
        let results = results.lock().unwrap();
        let winners: Vec<BlockRef> = results.iter().flatten().copied().collect();
        assert_eq!(
            winners.len(),
            1,
            "a one-block budget must admit exactly one of two racing allocators \
             (got {} successes)",
            winners.len()
        );
        assert_eq!(
            MemoryStats::get(&rt.stats.blocks_live),
            winners.len() as u64,
            "blocks_live gauge out of sync: failed attempts leaked budget"
        );
        for block in winners {
            unsafe { block.deallocate() };
        }
    })
}

/// The sharded allocator's remote-free protocol under a one-block budget.
///
/// Thread A (the owner shard) allocates the budget's only block, buries it
/// ripe, and allocates again; thread B races it on `drain_graveyard`. The
/// ripe block comes home one of two ways, depending on who drains first:
/// through A's own recovery-ladder drain (owner free → local push → pop), or
/// through B's drain (cross-thread free → A's MPSC return queue → drained by
/// A's next allocation). Oracle: A's second allocation succeeds on *every*
/// interleaving — a budgeted block parked in a return queue is still
/// allocatable memory — and the books balance afterwards. Catches
/// [`smc_memory::mutation::Mutation::DropRemoteDrain`], which strands the
/// remote queue and turns a reachable block into a spurious OOM.
pub fn remote_free_vs_owner_pop() -> Scenario {
    let rt = Runtime::with_budget(Some(BLOCK_SIZE as u64));
    let layout = BlockLayout::rows_of::<u64>().expect("u64 fits a block");
    let rt_a = rt.clone();
    let rt_b = rt.clone();
    let second = Arc::new(Mutex::new(None));
    let second_fin = second.clone();
    Scenario::new()
        .thread(move || {
            let x = rt_a
                .allocate_block(&layout, type_id_of::<u64>(), 1)
                .expect("first allocation owns the whole budget");
            rt_a.bury_block(x, 0);
            let y = rt_a.allocate_block(&layout, type_id_of::<u64>(), 1).expect(
                "owner must reacquire its buried block: a remote-freed block \
                 parked in the return queue is allocatable memory, not a leak",
            );
            *second.lock().unwrap() = Some(y);
        })
        .thread(move || {
            // Racing reclaimer: may free A's ripe block first, making it a
            // *remote* free onto A's shard queue.
            let _ = rt_b.drain_graveyard();
        })
        .finally(move || {
            let y = second_fin
                .lock()
                .unwrap()
                .take()
                .expect("thread A stored its second block");
            assert_eq!(
                MemoryStats::get(&rt.stats.blocks_live),
                1,
                "exactly one handout lives at quiescence"
            );
            rt.free_block(y);
            rt.verify()
                .unwrap_or_else(|v| panic!("allocator books must reconcile at quiescence: {v:?}"));
        })
}
