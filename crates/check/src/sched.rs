//! Token-passing deterministic scheduler over real OS threads.
//!
//! Exactly one virtual thread holds the token at any time. Before each shared
//! operation the running thread calls [`switch_point`], which hands the
//! decision to the execution's [`crate::explore::Chooser`]: either the
//! current thread continues (free) or another runnable thread is resumed (a
//! *preemption*, counted against the exploration bound). Spin events mark the
//! current thread *yielded* — it is excluded from the enabled set until it is
//! explicitly rescheduled or every live thread has yielded (at which point all
//! yields are cleared, modelling "some spin eventually observes progress").
//!
//! A step budget bounds each execution; exceeding it is reported as a
//! violation ("step budget exceeded"), which doubles as a livelock detector.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::explore::Chooser;

/// One scheduling decision, recorded for trace-driven DFS backtracking.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Threads that were eligible to run at this point (post yield-clearing).
    pub enabled: Vec<usize>,
    /// The thread that held the token when the decision was made.
    pub current: usize,
    /// Whether `current` itself was in `enabled` — if so, picking anything
    /// else costs a preemption.
    pub current_enabled: bool,
    /// The thread the chooser picked.
    pub chosen: usize,
}

/// Result of driving one execution to completion (or abortion).
#[derive(Debug)]
pub struct ExecOutcome {
    /// Every decision taken, in order.
    pub trace: Vec<Decision>,
    /// First assertion/panic message observed, if any.
    pub failure: Option<String>,
}

struct SchedState {
    current: usize,
    runnable: Vec<bool>,
    yielded: Vec<bool>,
    live: usize,
    steps: usize,
    max_steps: usize,
    trace: Vec<Decision>,
    chooser: Box<dyn Chooser + Send>,
    failure: Option<String>,
    abort: bool,
}

struct Inner {
    state: Mutex<SchedState>,
    cv: Condvar,
}

/// Unwind payload used to tear a virtual thread down after an abort without
/// reporting it as a scenario failure.
struct Aborted;

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Inner>, usize)>> = const { RefCell::new(None) };
}

fn lock(inner: &Inner) -> MutexGuard<'_, SchedState> {
    inner.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Reports a scheduling point from the currently running virtual thread.
///
/// `spin` marks the call as a failed-progress retry (a spin iteration): the
/// thread is descheduled until chosen again or until every thread has spun.
/// No-op when called from a thread the checker does not manage, so
/// instrumented `smc-memory` code keeps working on driver/test threads.
pub fn switch_point(spin: bool) {
    let ctx = CURRENT.with(|c| c.borrow().clone());
    if let Some((inner, me)) = ctx {
        switch(&inner, me, spin);
    }
}

fn enabled_set(st: &mut SchedState) -> Vec<usize> {
    let mut enabled: Vec<usize> = (0..st.runnable.len())
        .filter(|&t| st.runnable[t] && !st.yielded[t])
        .collect();
    if enabled.is_empty() {
        // Every live thread is spinning: clear the yields so one of them can
        // retry (its awaited condition may be satisfiable only by itself on a
        // later branch, and livelocks are caught by the step budget anyway).
        for y in st.yielded.iter_mut() {
            *y = false;
        }
        enabled = (0..st.runnable.len()).filter(|&t| st.runnable[t]).collect();
    }
    enabled
}

fn switch(inner: &Inner, me: usize, spin: bool) {
    // Drop handlers running during a panic unwind may hit instrumented
    // operations; unwinding via `resume_unwind` from inside a drop would be a
    // double panic (process abort), so aborted switch points become no-ops
    // while the thread is already unwinding.
    let unwinding = std::thread::panicking();
    let mut st = lock(inner);
    if st.abort {
        drop(st);
        if unwinding {
            return;
        }
        resume_unwind(Box::new(Aborted));
    }
    st.steps += 1;
    if st.steps > st.max_steps {
        if st.failure.is_none() {
            st.failure = Some(format!(
                "step budget exceeded ({} steps): possible livelock",
                st.max_steps
            ));
        }
        st.abort = true;
        inner.cv.notify_all();
        drop(st);
        if unwinding {
            return;
        }
        resume_unwind(Box::new(Aborted));
    }
    if spin {
        st.yielded[me] = true;
    }
    let enabled = enabled_set(&mut st);
    let current_enabled = enabled.contains(&me);
    let chosen = st.chooser.choose(&enabled, me, current_enabled);
    debug_assert!(enabled.contains(&chosen), "chooser picked disabled thread");
    st.trace.push(Decision {
        enabled,
        current: me,
        current_enabled,
        chosen,
    });
    if chosen == me {
        st.yielded[me] = false;
        return;
    }
    st.current = chosen;
    st.yielded[chosen] = false;
    inner.cv.notify_all();
    while st.current != me && !st.abort {
        st = inner.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    if st.abort {
        drop(st);
        if unwinding {
            return;
        }
        resume_unwind(Box::new(Aborted));
    }
}

/// Called when a virtual thread's body returns (or unwinds): hands the token
/// to a successor, if any thread is still live.
fn finish(inner: &Inner, me: usize) {
    let mut st = lock(inner);
    st.runnable[me] = false;
    st.live -= 1;
    if st.live == 0 || st.abort {
        inner.cv.notify_all();
        return;
    }
    if st.current != me {
        // We were torn down while another thread holds the token (abort path
        // already handled above; this is just defensive).
        return;
    }
    let enabled = enabled_set(&mut st);
    let chosen = st.chooser.choose(&enabled, me, false);
    st.trace.push(Decision {
        enabled,
        current: me,
        current_enabled: false,
        chosen,
    });
    st.current = chosen;
    st.yielded[chosen] = false;
    inner.cv.notify_all();
}

/// Blocks until this thread is given the token for the first time.
/// Returns `false` if the execution aborted before that happened.
fn wait_for_token(inner: &Inner, me: usize) -> bool {
    let mut st = lock(inner);
    while st.current != me && !st.abort {
        st = inner.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    !st.abort
}

fn record_failure(inner: &Inner, msg: String) {
    let mut st = lock(inner);
    if st.failure.is_none() {
        st.failure = Some(msg);
    }
    st.abort = true;
    inner.cv.notify_all();
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs one execution of `bodies` under the given chooser, to completion or
/// abort. `finale` runs on the driver thread afterwards (single-threaded
/// oracle checks), only if the threaded part did not already fail.
pub(crate) fn run_execution(
    bodies: Vec<Box<dyn FnOnce() + Send>>,
    finale: Option<Box<dyn FnOnce() + Send>>,
    chooser: Box<dyn Chooser + Send>,
    max_steps: usize,
) -> ExecOutcome {
    let n = bodies.len();
    assert!(n > 0, "scenario has no threads");
    // The panic-hook swap below is process-global; serialize executions so
    // concurrently running checker tests can't clobber each other's hooks.
    static EXEC_LOCK: Mutex<()> = Mutex::new(());
    let _exec_guard = EXEC_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let inner = Arc::new(Inner {
        state: Mutex::new(SchedState {
            current: 0,
            runnable: vec![true; n],
            yielded: vec![false; n],
            live: n,
            steps: 0,
            max_steps,
            trace: Vec::new(),
            chooser,
            failure: None,
            abort: false,
        }),
        cv: Condvar::new(),
    });
    // Suppress the default panic printout while virtual threads run: scenario
    // assertion failures are expected output of exploration, not noise.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let handles: Vec<_> = bodies
        .into_iter()
        .enumerate()
        .map(|(tid, body)| {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name(format!("smc-check-{tid}"))
                .spawn(move || {
                    CURRENT.with(|c| *c.borrow_mut() = Some((inner.clone(), tid)));
                    if wait_for_token(&inner, tid) {
                        let result = catch_unwind(AssertUnwindSafe(body));
                        if let Err(payload) = result {
                            if !payload.is::<Aborted>() {
                                record_failure(&inner, panic_message(payload.as_ref()));
                            }
                        }
                    }
                    finish(&inner, tid);
                    CURRENT.with(|c| *c.borrow_mut() = None);
                })
                .expect("failed to spawn virtual thread")
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }
    let (mut trace, mut failure) = {
        let mut st = lock(&inner);
        (std::mem::take(&mut st.trace), st.failure.take())
    };
    if failure.is_none() {
        if let Some(finale) = finale {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(finale)) {
                failure = Some(panic_message(payload.as_ref()));
            }
        }
    }
    std::panic::set_hook(prev_hook);
    // Drop enabled-set allocations for decisions nobody will inspect further
    // (the explorer only reads them; keep as-is).
    trace.shrink_to_fit();
    ExecOutcome { trace, failure }
}

/// A checkable scenario: a set of virtual-thread bodies plus an optional
/// single-threaded finale that asserts the shadow-state oracle.
///
/// The closure passed to [`Checker::check`](crate::Checker::check) is invoked
/// once per execution and must build a *fresh* scenario each time (fresh
/// shared state, fresh shadow state).
#[derive(Default)]
pub struct Scenario {
    pub(crate) threads: Vec<Box<dyn FnOnce() + Send>>,
    pub(crate) finale: Option<Box<dyn FnOnce() + Send>>,
}

impl Scenario {
    /// Creates an empty scenario.
    pub fn new() -> Scenario {
        Scenario::default()
    }

    /// Adds a virtual thread. Thread ids are assigned in call order, starting
    /// at 0; execution always starts at thread 0.
    pub fn thread(mut self, body: impl FnOnce() + Send + 'static) -> Scenario {
        self.threads.push(Box::new(body));
        self
    }

    /// Adds a single-threaded oracle check that runs after all virtual
    /// threads finished (skipped if the execution already failed).
    pub fn finally(mut self, f: impl FnOnce() + Send + 'static) -> Scenario {
        self.finale = Some(Box::new(f));
        self
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("threads", &self.threads.len())
            .field("has_finale", &self.finale.is_some())
            .finish()
    }
}
