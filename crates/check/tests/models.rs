//! Self-tests for the deterministic scheduler and bounded explorer, using
//! hand-instrumented toy models (direct `switch_point` calls). These run in
//! every build — they do not require `--cfg smc_check`.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use smc_check::{switch_point, Checker, Scenario, Schedule};

/// Classic lost update: two threads do a non-atomic read-modify-write.
fn racy_counter() -> Scenario {
    let counter = Arc::new(AtomicU32::new(0));
    let mut scenario = Scenario::new();
    for _ in 0..2 {
        let counter = counter.clone();
        scenario = scenario.thread(move || {
            switch_point(false);
            let v = counter.load(Ordering::SeqCst);
            switch_point(false);
            counter.store(v + 1, Ordering::SeqCst);
        });
    }
    scenario.finally(move || {
        let v = counter.load(Ordering::SeqCst);
        assert_eq!(v, 2, "lost update: counter ended at {v}");
    })
}

/// The fixed version: a single atomic RMW per thread.
fn atomic_counter() -> Scenario {
    let counter = Arc::new(AtomicU32::new(0));
    let mut scenario = Scenario::new();
    for _ in 0..2 {
        let counter = counter.clone();
        scenario = scenario.thread(move || {
            switch_point(false);
            counter.fetch_add(1, Ordering::SeqCst);
        });
    }
    scenario.finally(move || {
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    })
}

#[test]
fn finds_lost_update_and_replays_it() {
    let checker = Checker::new();
    let violation = *checker
        .check(racy_counter)
        .expect_err("the race must be found within preemption bound 2");
    assert!(
        violation.message.contains("lost update"),
        "unexpected failure: {}",
        violation.message
    );
    // The printed seed must reproduce the violation deterministically.
    let rendered = violation.to_string();
    assert!(rendered.contains("replayable schedule seed:"), "{rendered}");
    let reproduced = checker.replay(&violation.schedule, racy_counter);
    assert_eq!(
        reproduced.as_deref(),
        Some(violation.message.as_str()),
        "replaying the reported schedule must reproduce the same failure"
    );
    // And the seed string round-trips into the same schedule.
    let parsed: Schedule = violation.schedule.to_string().parse().unwrap();
    assert_eq!(parsed, violation.schedule);
}

#[test]
fn atomic_counter_passes_exhaustively() {
    let stats = Checker::new()
        .check(atomic_counter)
        .expect("atomic increments cannot lose updates");
    assert!(stats.exhausted, "bounded tree should be fully explored");
    assert!(
        stats.executions > 1,
        "exploration must try more than the default schedule"
    );
}

#[test]
fn exploration_is_deterministic() {
    let run = || match Checker::new().check(racy_counter) {
        Err(v) => (v.message.clone(), v.schedule.clone(), v.executions),
        Ok(_) => panic!("race must be found"),
    };
    assert_eq!(run(), run(), "same scenario, same checker, same outcome");
}

#[test]
fn preemption_bound_zero_misses_the_race_dfs_only() {
    let mut checker = Checker::new();
    checker.preemption_bound = 0;
    checker.random_iterations = 0;
    let stats = checker
        .check(racy_counter)
        .expect("serial schedules cannot lose an update");
    assert!(stats.exhausted);
    // One preemption suffices; the bound-1 tree must find it.
    checker.preemption_bound = 1;
    checker.check(racy_counter).expect_err("bound 1 finds it");
}

#[test]
fn random_phase_finds_races_beyond_the_dfs_bound() {
    let mut checker = Checker::new();
    checker.preemption_bound = 0; // cripple the DFS on purpose
    checker.random_iterations = 500;
    checker
        .check(racy_counter)
        .expect_err("seeded random sampling must catch the race");
}

#[test]
fn step_budget_flags_livelock() {
    let mut checker = Checker::new();
    checker.max_steps = 300;
    checker.random_iterations = 0;
    let violation = checker
        .check(|| {
            Scenario::new().thread(|| loop {
                // Spin on a condition nobody will ever satisfy.
                switch_point(true);
            })
        })
        .expect_err("an unsatisfiable spin loop must trip the step budget");
    assert!(
        violation.message.contains("step budget"),
        "unexpected failure: {}",
        violation.message
    );
}

#[test]
fn store_buffer_litmus_is_sequentially_consistent() {
    // Dekker store-buffer litmus: under SC, (r0, r1) = (0, 0) is impossible;
    // the checker executes real atomics one thread at a time, so it explores
    // exactly the SC interleavings. The finale snapshots each execution's
    // (r0, r1) pair into a set shared across executions.
    let pairs: Arc<Mutex<HashSet<(u32, u32)>>> = Arc::new(Mutex::new(HashSet::new()));
    let sink = pairs.clone();
    let make_pairs = move || {
        let x = Arc::new(AtomicU32::new(0));
        let y = Arc::new(AtomicU32::new(0));
        let r0 = Arc::new(AtomicU32::new(u32::MAX));
        let r1 = Arc::new(AtomicU32::new(u32::MAX));
        let (x0, y0, rec0) = (x.clone(), y.clone(), r0.clone());
        let (x1, y1, rec1) = (x.clone(), y.clone(), r1.clone());
        let sink = sink.clone();
        Scenario::new()
            .thread(move || {
                switch_point(false);
                x0.store(1, Ordering::SeqCst);
                switch_point(false);
                rec0.store(y0.load(Ordering::SeqCst), Ordering::SeqCst);
            })
            .thread(move || {
                switch_point(false);
                y1.store(1, Ordering::SeqCst);
                switch_point(false);
                rec1.store(x1.load(Ordering::SeqCst), Ordering::SeqCst);
            })
            .finally(move || {
                sink.lock()
                    .unwrap()
                    .insert((r0.load(Ordering::SeqCst), r1.load(Ordering::SeqCst)));
            })
    };
    Checker::new()
        .check(make_pairs)
        .expect("litmus has no assertions to fail");
    let pairs = pairs.lock().unwrap();
    assert!(
        !pairs.contains(&(0, 0)),
        "(0,0) is not an SC outcome; the scheduler leaked a non-atomic step: {pairs:?}"
    );
    assert!(
        pairs.len() >= 3,
        "bound-2 exploration must reach all three SC outcomes, got {pairs:?}"
    );
}

#[test]
fn three_threads_interleave_and_finish() {
    // Smoke: more threads than two, with spins, still terminates and counts.
    let make = || {
        let counter = Arc::new(AtomicU32::new(0));
        let mut scenario = Scenario::new();
        for _ in 0..3 {
            let counter = counter.clone();
            scenario = scenario.thread(move || {
                switch_point(false);
                counter.fetch_add(1, Ordering::SeqCst);
                switch_point(true); // pretend to wait once
                switch_point(false);
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        scenario.finally(move || {
            assert_eq!(counter.load(Ordering::SeqCst), 6);
        })
    };
    let mut checker = Checker::new();
    checker.max_executions = 3_000; // keep the 3-thread tree affordable
    let stats = checker.check(make).expect("no race to find");
    assert!(stats.executions > 10);
}
