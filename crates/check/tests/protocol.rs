//! Protocol checking + mutation testing for the SMC concurrency protocol.
//!
//! Only built under `RUSTFLAGS='--cfg smc_check'` (the scenarios drive
//! instrumented `smc-memory` code). Two layers:
//!
//! 1. every protocol scenario passes an exhaustive bounded-preemption sweep
//!    (no false positives), and
//! 2. every re-introducible known bug (`smc_memory::mutation`) is *found* by
//!    the checker within its budget, with the failing schedule printed as a
//!    replayable seed that reproduces the violation deterministically.
//!
//! Mutations are process-global switches, so every test here serializes on
//! one mutex and restores the clean state before releasing it.

#![cfg(smc_check)]

use std::sync::{Mutex, MutexGuard};

use smc_check::sched::Scenario;
use smc_check::{scenarios, Checker};
use smc_memory::mutation::{self, Mutation};

/// Serializes tests because `smc_memory::mutation` switches are process-wide.
fn serialized() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn all_protocol_scenarios_pass_unmutated() {
    let _serial = serialized();
    mutation::clear_all();
    for (name, make) in scenarios::all() {
        let stats = Checker::new()
            .check(make)
            .unwrap_or_else(|violation| panic!("{name} violated the oracle:\n{violation}"));
        assert!(
            stats.exhausted,
            "{name}: preemption-bound-2 tree not exhausted \
             ({} executions; raise max_executions)",
            stats.executions
        );
        println!(
            "{name}: exhaustive at bound 2 — {} executions, max depth {}",
            stats.executions, stats.max_depth
        );
    }
}

/// Runs `make` under mutation `m`, expects the checker to catch it, prints
/// the replayable seed, and proves the seed reproduces deterministically.
fn assert_mutation_caught(m: Mutation, name: &str, make: fn() -> Scenario) {
    let _serial = serialized();
    mutation::clear_all();
    mutation::set(m);
    let checker = Checker::new();
    let result = checker.check(make);
    let violation = match result {
        Err(v) => v,
        Ok(stats) => {
            mutation::clear_all();
            panic!(
                "mutation {m:?} survived {} executions of {name}: \
                 the checker's budget does not cover this bug",
                stats.executions
            );
        }
    };
    println!(
        "{name} caught {m:?} after {} executions:",
        violation.executions
    );
    println!("{violation}");
    // The reported schedule must reproduce the same failure, twice.
    let first = checker.replay(&violation.schedule, make);
    let second = checker.replay(&violation.schedule, make);
    mutation::clear_all();
    assert_eq!(
        first.as_deref(),
        Some(violation.message.as_str()),
        "replaying the printed seed must reproduce the reported violation"
    );
    assert_eq!(first, second, "replay must be deterministic");
    // Sanity: with the mutation cleared, the same schedule passes.
    let clean = checker.replay(&violation.schedule, make);
    assert_eq!(
        clean, None,
        "the failing schedule must pass once the bug is fixed again"
    );
}

#[test]
fn catches_no_publish_recheck() {
    assert_mutation_caught(
        Mutation::NoPublishRecheck,
        "pin_vs_advance",
        scenarios::pin_vs_advance,
    );
}

#[test]
fn catches_advance_ignores_pinned() {
    assert_mutation_caught(
        Mutation::AdvanceIgnoresPinned,
        "pin_vs_advance",
        scenarios::pin_vs_advance,
    );
}

#[test]
fn catches_move_skips_lock() {
    assert_mutation_caught(
        Mutation::MoveSkipsLock,
        "double_mover",
        scenarios::double_mover,
    );
}

#[test]
fn catches_bail_keeps_frozen() {
    assert_mutation_caught(
        Mutation::BailKeepsFrozen,
        "move_vs_bail",
        scenarios::move_vs_bail,
    );
}

#[test]
fn catches_cancel_skips_bail_rollback() {
    assert_mutation_caught(
        Mutation::CancelSkipsBailRollback,
        "cancel_vs_inflight_move",
        scenarios::cancel_vs_inflight_move,
    );
}

#[test]
fn catches_drop_remote_drain() {
    assert_mutation_caught(
        Mutation::DropRemoteDrain,
        "remote_free_vs_owner_pop",
        scenarios::remote_free_vs_owner_pop,
    );
}

#[test]
fn catches_slot_vs_entry_incarnation() {
    assert_mutation_caught(
        Mutation::SlotVsEntryInc,
        "slot_vs_entry_incarnation",
        scenarios::slot_vs_entry_incarnation,
    );
}
