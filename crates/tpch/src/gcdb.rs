//! The TPC-H schema over the simulated managed heap — the paper's baseline
//! databases (`List<T>` and `ConcurrentDictionary<TKey,TValue>` of §7).
//!
//! Objects are heap-allocated and referenced by handles; FK relations are
//! handle fields traversed through the arena (the managed pointer chase).
//! The same objects are rooted both in per-table `GcList`s and in a
//! `GcConcurrentDictionary` keyed by primary key, so Fig 11's List and
//! C.Dictionary series run over identical object graphs and differ only in
//! the enumeration path.

use std::sync::Arc;

use managed_heap::{Arena, GcConcurrentDictionary, GcList, Handle, ManagedHeap, Marker, Trace};
use smc_memory::Decimal;

use crate::gen::Generator;
use crate::text;

/// REGION object (managed).
pub struct GcRegion {
    /// Primary key.
    pub key: i64,
    /// Name.
    pub name: String,
    /// TPC-H comment text.
    pub comment: String,
}
impl Trace for GcRegion {}

/// NATION object (managed).
pub struct GcNation {
    /// Primary key.
    pub key: i64,
    /// Name.
    pub name: String,
    /// FK: region key.
    pub regionkey: i64,
    /// The region (FK).
    pub region: Handle<GcRegion>,
    /// TPC-H comment text.
    pub comment: String,
}
impl Trace for GcNation {
    fn trace(&self, m: &mut Marker<'_>) {
        m.mark(self.region);
    }
}

/// SUPPLIER object (managed).
pub struct GcSupplier {
    /// Primary key.
    pub key: i64,
    /// Name.
    pub name: String,
    /// FK: nation key.
    pub nationkey: i64,
    /// The nation (FK).
    pub nation: Handle<GcNation>,
    /// Account balance.
    pub acctbal: Decimal,
    /// TPC-H comment text.
    pub comment: String,
}
impl Trace for GcSupplier {
    fn trace(&self, m: &mut Marker<'_>) {
        m.mark(self.nation);
    }
}

/// PART object (managed).
pub struct GcPart {
    /// Primary key.
    pub key: i64,
    /// Name.
    pub name: String,
    /// Manufacturer.
    pub mfgr: String,
    /// Part type string.
    pub typ: String,
    /// Part size.
    pub size: i32,
    /// Retail price.
    pub retailprice: Decimal,
}
impl Trace for GcPart {}

/// PARTSUPP object (managed).
pub struct GcPartSupp {
    /// FK: part key.
    pub partkey: i64,
    /// FK: supplier key.
    pub suppkey: i64,
    /// The part (FK).
    pub part: Handle<GcPart>,
    /// The supplier (FK).
    pub supplier: Handle<GcSupplier>,
    /// Supply cost (`ps_supplycost`).
    pub supplycost: Decimal,
}
impl Trace for GcPartSupp {
    fn trace(&self, m: &mut Marker<'_>) {
        m.mark(self.part);
        m.mark(self.supplier);
    }
}

/// CUSTOMER object (managed).
pub struct GcCustomer {
    /// Primary key.
    pub key: i64,
    /// Name.
    pub name: String,
    /// FK: nation key.
    pub nationkey: i64,
    /// The nation (FK).
    pub nation: Handle<GcNation>,
    /// Account balance.
    pub acctbal: Decimal,
    /// Market segment.
    pub mktsegment: u8,
}
impl Trace for GcCustomer {
    fn trace(&self, m: &mut Marker<'_>) {
        m.mark(self.nation);
    }
}

/// ORDERS object (managed).
pub struct GcOrder {
    /// Primary key.
    pub key: i64,
    /// FK: customer key.
    pub custkey: i64,
    /// The customer (FK).
    pub customer: Handle<GcCustomer>,
    /// Order status flag.
    pub orderstatus: u8,
    /// Total order price.
    pub totalprice: Decimal,
    /// Order date (epoch day).
    pub orderdate: i32,
    /// Order priority.
    pub orderpriority: u8,
    /// Ship priority.
    pub shippriority: i32,
}
impl Trace for GcOrder {
    fn trace(&self, m: &mut Marker<'_>) {
        m.mark(self.customer);
    }
}

/// LINEITEM object (managed).
pub struct GcLineitem {
    /// FK: order key.
    pub orderkey: i64,
    /// FK: part key.
    pub partkey: i64,
    /// FK: supplier key.
    pub suppkey: i64,
    /// The order (FK).
    pub order: Handle<GcOrder>,
    /// The part (FK).
    pub part: Handle<GcPart>,
    /// The supplier (FK).
    pub supplier: Handle<GcSupplier>,
    /// Line number within the order.
    pub linenumber: i32,
    /// Quantity (`l_quantity`).
    pub quantity: Decimal,
    /// Extended price (`l_extendedprice`).
    pub extendedprice: Decimal,
    /// Discount fraction (`l_discount`).
    pub discount: Decimal,
    /// Tax fraction (`l_tax`).
    pub tax: Decimal,
    /// Return flag (`l_returnflag`).
    pub returnflag: u8,
    /// Line status (`l_linestatus`).
    pub linestatus: u8,
    /// Ship date (epoch day).
    pub shipdate: i32,
    /// Commit date (epoch day).
    pub commitdate: i32,
    /// Receipt date (epoch day).
    pub receiptdate: i32,
    /// TPC-H comment text.
    pub comment: String,
}
impl Trace for GcLineitem {
    fn trace(&self, m: &mut Marker<'_>) {
        m.mark(self.order);
        m.mark(self.part);
        m.mark(self.supplier);
    }
}

/// The managed TPC-H database: `GcList` per table plus a keyed dictionary
/// over the same lineitem objects.
pub struct GcDb {
    /// The heap every object lives on.
    pub heap: Arc<ManagedHeap>,
    /// The `region` table.
    pub regions: GcList<GcRegion>,
    /// The `nation` table.
    pub nations: GcList<GcNation>,
    /// The `supplier` table.
    pub suppliers: GcList<GcSupplier>,
    /// The `part` table.
    pub parts: GcList<GcPart>,
    /// The `partsupp` table.
    pub partsupps: GcList<GcPartSupp>,
    /// The `customer` table.
    pub customers: GcList<GcCustomer>,
    /// The `order` table.
    pub orders: GcList<GcOrder>,
    /// The `lineitem` table.
    pub lineitems: GcList<GcLineitem>,
    /// Dictionary view of the same lineitem objects, keyed by
    /// `orderkey * 8 + linenumber` (the C.Dictionary series of Fig 11).
    pub lineitem_dict: GcConcurrentDictionary<i64, GcLineitem>,
    /// Arenas for FK traversal in queries.
    /// Arena resolving `GcOrder` handles during FK traversal.
    pub order_arena: Arc<Arena<GcOrder>>,
    /// Arena resolving `GcCustomer` handles during FK traversal.
    pub customer_arena: Arc<Arena<GcCustomer>>,
    /// Arena resolving `GcSupplier` handles during FK traversal.
    pub supplier_arena: Arc<Arena<GcSupplier>>,
    /// Arena resolving `GcNation` handles during FK traversal.
    pub nation_arena: Arc<Arena<GcNation>>,
    /// Arena resolving `GcRegion` handles during FK traversal.
    pub region_arena: Arc<Arena<GcRegion>>,
    /// Arena resolving `GcPart` handles during FK traversal.
    pub part_arena: Arc<Arena<GcPart>>,
}

/// The dictionary key for a lineitem.
pub fn lineitem_key(orderkey: i64, linenumber: i32) -> i64 {
    orderkey * 8 + linenumber as i64
}

impl GcDb {
    /// Generates and loads the managed database on `heap`.
    pub fn load(gen: &Generator, heap: &Arc<ManagedHeap>) -> GcDb {
        let regions: GcList<GcRegion> = GcList::new(heap);
        let nations: GcList<GcNation> = GcList::new(heap);
        let suppliers: GcList<GcSupplier> = GcList::new(heap);
        let parts: GcList<GcPart> = GcList::new(heap);
        let partsupps: GcList<GcPartSupp> = GcList::new(heap);
        let customers: GcList<GcCustomer> = GcList::new(heap);
        let orders: GcList<GcOrder> = GcList::new(heap);
        let lineitems: GcList<GcLineitem> = GcList::new(heap);
        let lineitem_dict: GcConcurrentDictionary<i64, GcLineitem> =
            GcConcurrentDictionary::new(heap);

        let mut region_hs = Vec::new();
        gen.regions(|r| {
            region_hs.push(regions.add(GcRegion {
                key: r.key,
                name: r.name,
                comment: r.comment,
            }));
        });
        let mut nation_hs = Vec::new();
        gen.nations(|n| {
            nation_hs.push(nations.add(GcNation {
                key: n.key,
                name: n.name,
                regionkey: n.region,
                region: region_hs[n.region as usize],
                comment: n.comment,
            }));
        });
        let mut supplier_hs = Vec::with_capacity(gen.cardinalities().suppliers + 1);
        supplier_hs.push(Handle::<GcSupplier>::new_invalid());
        gen.suppliers(|s| {
            supplier_hs.push(suppliers.add(GcSupplier {
                key: s.key,
                name: s.name,
                nationkey: s.nation,
                nation: nation_hs[s.nation as usize],
                acctbal: s.acctbal,
                comment: s.comment,
            }));
        });
        let mut part_hs = Vec::with_capacity(gen.cardinalities().parts + 1);
        part_hs.push(Handle::<GcPart>::new_invalid());
        gen.parts(|p| {
            part_hs.push(parts.add(GcPart {
                key: p.key,
                name: p.name,
                mfgr: p.mfgr,
                typ: p.typ,
                size: p.size,
                retailprice: p.retailprice,
            }));
        });
        gen.partsupps(|ps| {
            partsupps.add(GcPartSupp {
                partkey: ps.part,
                suppkey: ps.supplier,
                part: part_hs[ps.part as usize],
                supplier: supplier_hs[ps.supplier as usize],
                supplycost: ps.supplycost,
            });
        });
        let mut customer_hs = Vec::with_capacity(gen.cardinalities().customers + 1);
        customer_hs.push(Handle::<GcCustomer>::new_invalid());
        gen.customers(|c| {
            customer_hs.push(
                customers.add(GcCustomer {
                    key: c.key,
                    name: c.name,
                    nationkey: c.nation,
                    nation: nation_hs[c.nation as usize],
                    acctbal: c.acctbal,
                    mktsegment: text::SEGMENTS
                        .iter()
                        .position(|s| *s == c.mktsegment)
                        .unwrap() as u8,
                }),
            );
        });
        gen.orders(|o, lines| {
            let oh = orders.add(GcOrder {
                key: o.key,
                custkey: o.customer,
                customer: customer_hs[o.customer as usize],
                orderstatus: o.orderstatus as u8,
                totalprice: o.totalprice,
                orderdate: o.orderdate,
                orderpriority: text::PRIORITIES
                    .iter()
                    .position(|p| *p == o.orderpriority)
                    .unwrap() as u8,
                shippriority: o.shippriority,
            });
            for l in lines {
                let lh = lineitems.add(GcLineitem {
                    orderkey: l.order,
                    partkey: l.part,
                    suppkey: l.supplier,
                    order: oh,
                    part: part_hs[l.part as usize],
                    supplier: supplier_hs[l.supplier as usize],
                    linenumber: l.linenumber,
                    quantity: l.quantity,
                    extendedprice: l.extendedprice,
                    discount: l.discount,
                    tax: l.tax,
                    returnflag: l.returnflag as u8,
                    linestatus: l.linestatus as u8,
                    shipdate: l.shipdate,
                    commitdate: l.commitdate,
                    receiptdate: l.receiptdate,
                    comment: l.comment,
                });
                lineitem_dict.insert_handle(lineitem_key(l.order, l.linenumber), lh);
            }
        });
        GcDb {
            heap: heap.clone(),
            order_arena: heap.arena::<GcOrder>(),
            customer_arena: heap.arena::<GcCustomer>(),
            supplier_arena: heap.arena::<GcSupplier>(),
            nation_arena: heap.arena::<GcNation>(),
            region_arena: heap.arena::<GcRegion>(),
            part_arena: heap.arena::<GcPart>(),
            regions,
            nations,
            suppliers,
            parts,
            partsupps,
            customers,
            orders,
            lineitems,
            lineitem_dict,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_traverse() {
        let gen = Generator::new(0.001);
        let heap = ManagedHeap::new_batch();
        let db = GcDb::load(&gen, &heap);
        assert_eq!(db.regions.len(), 5);
        assert_eq!(db.orders.len(), gen.cardinalities().orders);
        assert_eq!(db.lineitems.len(), db.lineitem_dict.len());
        let g = heap.enter();
        let mut checked = 0;
        db.lineitems.for_each(&g, |l| {
            let o = db.order_arena.get(l.order).expect("order");
            assert_eq!(o.key, l.orderkey);
            let c = db.customer_arena.get(o.customer).expect("customer");
            assert_eq!(c.key, o.custkey);
            checked += 1;
        });
        assert!(checked > 500);
    }

    #[test]
    fn objects_survive_collections_during_load() {
        // A small nursery forces many collections during load; the object
        // graph must stay intact because the lists root everything.
        let gen = Generator::new(0.001);
        let heap = managed_heap::ManagedHeap::new(managed_heap::HeapConfig {
            nursery_budget: 2_000,
            ..managed_heap::HeapConfig::default()
        });
        let db = GcDb::load(&gen, &heap);
        assert!(heap.collections() > 0, "load must have triggered GCs");
        let g = heap.enter();
        let n = db.lineitems.for_each(&g, |l| {
            assert!(db.order_arena.get(l.order).is_some());
        });
        assert_eq!(n, db.lineitems.len() as u64);
    }
}
