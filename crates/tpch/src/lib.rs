//! # tpch — the TPC-H substrate of the SMC reproduction
//!
//! Everything the paper's evaluation (§7) needs from TPC-H:
//!
//! * [`gen`] — a deterministic `dbgen` clone (cardinalities, value pools,
//!   date/price distributions);
//! * [`smcdb`] — the object-oriented schema over self-managed collections,
//!   with reference joins, §6 direct pointers, and a §4.1 columnar twin;
//! * [`gcdb`] — the same schema over the simulated managed heap (the
//!   `List<T>` / `ConcurrentDictionary` baselines);
//! * [`csdb`] — the relational schema over the columnstore engine with the
//!   paper's clustered indexes;
//! * [`queries`] — Q1–Q6 for every backend, returning exactly comparable
//!   rows;
//! * [`workloads`] — refresh streams (Fig 8), flat/nested enumeration and
//!   the fresh→worn churn (Fig 10).

#![warn(missing_docs)]

pub mod csdb;
pub mod dates;
pub mod gcdb;
pub mod gen;
pub mod queries;
pub mod smcdb;
pub mod text;
pub mod workloads;

pub use gen::Generator;
pub use queries::Params;
