//! A deterministic TPC-H `dbgen` clone.
//!
//! Reproduces the spec's cardinalities, value pools, key relationships and
//! the distributions the Q1–Q6 predicates select on (dates, discounts,
//! quantities, flags). Rows are streamed through callbacks so large scale
//! factors never materialize string-heavy intermediate tables; each backend
//! (SMC / managed / columnstore) loads from the same stream, guaranteeing
//! identical logical databases — which is what lets the test suite insist
//! that every backend returns bit-identical query answers.

use smc_util::rng::Pcg32 as StdRng;

use smc_memory::Decimal;

use crate::dates::{CURRENT_DATE, LAST_ORDER_DATE, START_DATE};
use crate::text;

/// Scale-factor driven generator.
#[derive(Debug, Clone)]
pub struct Generator {
    /// TPC-H scale factor (1.0 ≈ 6M lineitems). Fractional SFs scale every
    /// table proportionally.
    pub scale: f64,
    /// Base RNG seed; the same seed always produces the same database.
    pub seed: u64,
}

/// Row counts per table at this scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cardinalities {
    /// Row count of the `region` table.
    pub regions: usize,
    /// Row count of the `nation` table.
    pub nations: usize,
    /// Row count of the `supplier` table.
    pub suppliers: usize,
    /// Row count of the `part` table.
    pub parts: usize,
    /// Row count of the `partsupp` table.
    pub partsupps: usize,
    /// Row count of the `customer` table.
    pub customers: usize,
    /// Row count of the `order` table.
    pub orders: usize,
}

// Raw row types: the generator's output records.

/// REGION row.
pub struct RawRegion {
    /// Primary key.
    pub key: i64,
    /// Name.
    pub name: String,
    /// TPC-H comment text.
    pub comment: String,
}

/// NATION row.
pub struct RawNation {
    /// Primary key.
    pub key: i64,
    /// Name.
    pub name: String,
    /// The region (FK).
    pub region: i64,
    /// TPC-H comment text.
    pub comment: String,
}

/// SUPPLIER row.
pub struct RawSupplier {
    /// Primary key.
    pub key: i64,
    /// Name.
    pub name: String,
    /// Address.
    pub address: String,
    /// The nation (FK).
    pub nation: i64,
    /// Phone number.
    pub phone: String,
    /// Account balance.
    pub acctbal: Decimal,
    /// TPC-H comment text.
    pub comment: String,
}

/// PART row.
pub struct RawPart {
    /// Primary key.
    pub key: i64,
    /// Name.
    pub name: String,
    /// Manufacturer.
    pub mfgr: String,
    /// Brand.
    pub brand: String,
    /// Part type string.
    pub typ: String,
    /// Part size.
    pub size: i32,
    /// Container.
    pub container: String,
    /// Retail price.
    pub retailprice: Decimal,
    /// TPC-H comment text.
    pub comment: String,
}

/// PARTSUPP row.
pub struct RawPartSupp {
    /// The part (FK).
    pub part: i64,
    /// The supplier (FK).
    pub supplier: i64,
    /// Available quantity (`ps_availqty`).
    pub availqty: i32,
    /// Supply cost (`ps_supplycost`).
    pub supplycost: Decimal,
    /// TPC-H comment text.
    pub comment: String,
}

/// CUSTOMER row.
pub struct RawCustomer {
    /// Primary key.
    pub key: i64,
    /// Name.
    pub name: String,
    /// Address.
    pub address: String,
    /// The nation (FK).
    pub nation: i64,
    /// Phone number.
    pub phone: String,
    /// Account balance.
    pub acctbal: Decimal,
    /// Market segment.
    pub mktsegment: &'static str,
    /// TPC-H comment text.
    pub comment: String,
}

/// ORDERS row.
pub struct RawOrder {
    /// Primary key.
    pub key: i64,
    /// The customer (FK).
    pub customer: i64,
    /// Order status flag.
    pub orderstatus: char,
    /// Total order price.
    pub totalprice: Decimal,
    /// Order date (epoch day).
    pub orderdate: i32,
    /// Order priority.
    pub orderpriority: &'static str,
    /// Clerk.
    pub clerk: String,
    /// Ship priority.
    pub shippriority: i32,
    /// TPC-H comment text.
    pub comment: String,
}

/// LINEITEM row.
pub struct RawLineitem {
    /// The order (FK).
    pub order: i64,
    /// The part (FK).
    pub part: i64,
    /// The supplier (FK).
    pub supplier: i64,
    /// Line number within the order.
    pub linenumber: i32,
    /// Quantity (`l_quantity`).
    pub quantity: Decimal,
    /// Extended price (`l_extendedprice`).
    pub extendedprice: Decimal,
    /// Discount fraction (`l_discount`).
    pub discount: Decimal,
    /// Tax fraction (`l_tax`).
    pub tax: Decimal,
    /// Return flag (`l_returnflag`).
    pub returnflag: char,
    /// Line status (`l_linestatus`).
    pub linestatus: char,
    /// Ship date (epoch day).
    pub shipdate: i32,
    /// Commit date (epoch day).
    pub commitdate: i32,
    /// Receipt date (epoch day).
    pub receiptdate: i32,
    /// Shipping instructions.
    pub shipinstruct: &'static str,
    /// Ship mode.
    pub shipmode: &'static str,
    /// TPC-H comment text.
    pub comment: String,
}

/// `P_RETAILPRICE` from the part key (spec 4.2.3 formula).
pub fn retail_price(partkey: i64) -> Decimal {
    let cents = 90_000 + (partkey % 20_001) / 10 + 100 * (partkey % 1_000);
    Decimal::from_cents(cents)
}

impl Generator {
    /// Creates a generator for `scale` with the default seed.
    pub fn new(scale: f64) -> Generator {
        Generator {
            scale,
            seed: 0x7c51_70b1,
        }
    }

    /// Creates a generator with an explicit seed.
    pub fn with_seed(scale: f64, seed: u64) -> Generator {
        Generator { scale, seed }
    }

    fn scaled(&self, base: usize) -> usize {
        ((base as f64 * self.scale).round() as usize).max(1)
    }

    /// Row counts at this scale.
    pub fn cardinalities(&self) -> Cardinalities {
        let parts = self.scaled(200_000);
        Cardinalities {
            regions: 5,
            nations: 25,
            suppliers: self.scaled(10_000),
            parts,
            partsupps: parts * 4,
            customers: self.scaled(150_000),
            orders: self.scaled(1_500_000),
        }
    }

    fn rng(&self, table: u64) -> StdRng {
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(table),
        )
    }

    /// Streams REGION rows.
    pub fn regions(&self, mut f: impl FnMut(RawRegion)) {
        let mut rng = self.rng(1);
        for (i, name) in text::REGIONS.iter().enumerate() {
            f(RawRegion {
                key: i as i64,
                name: name.to_string(),
                comment: text::comment(&mut rng, 80),
            });
        }
    }

    /// Streams NATION rows.
    pub fn nations(&self, mut f: impl FnMut(RawNation)) {
        let mut rng = self.rng(2);
        for (i, (name, region)) in text::NATIONS.iter().enumerate() {
            f(RawNation {
                key: i as i64,
                name: name.to_string(),
                region: *region as i64,
                comment: text::comment(&mut rng, 100),
            });
        }
    }

    /// Streams SUPPLIER rows.
    pub fn suppliers(&self, mut f: impl FnMut(RawSupplier)) {
        let mut rng = self.rng(3);
        let n = self.cardinalities().suppliers;
        for key in 1..=n as i64 {
            let nation = rng.gen_range(0..25);
            f(RawSupplier {
                key,
                name: format!("Supplier#{key:09}"),
                address: text::comment(&mut rng, 20),
                nation: nation as i64,
                phone: text::phone(&mut rng, nation),
                acctbal: Decimal::from_cents(rng.gen_range(-99_999..=999_999)),
                comment: text::comment(&mut rng, 60),
            });
        }
    }

    /// Streams PART rows.
    pub fn parts(&self, mut f: impl FnMut(RawPart)) {
        let mut rng = self.rng(4);
        let n = self.cardinalities().parts;
        for key in 1..=n as i64 {
            let m = rng.gen_range(1..=5);
            f(RawPart {
                key,
                name: text::part_name(&mut rng),
                mfgr: format!("Manufacturer#{m}"),
                brand: format!("Brand#{}{}", m, rng.gen_range(1..=5)),
                typ: text::part_type(&mut rng),
                size: rng.gen_range(1..=50),
                container: text::container(&mut rng),
                retailprice: retail_price(key),
                comment: text::comment(&mut rng, 20),
            });
        }
    }

    /// Streams PARTSUPP rows (four suppliers per part, spec key formula).
    pub fn partsupps(&self, mut f: impl FnMut(RawPartSupp)) {
        let mut rng = self.rng(5);
        let c = self.cardinalities();
        let s = c.suppliers as i64;
        for part in 1..=c.parts as i64 {
            for i in 0..4i64 {
                let supplier = (part + i * (s / 4 + (part - 1) / s)) % s + 1;
                f(RawPartSupp {
                    part,
                    supplier,
                    availqty: rng.gen_range(1..=9_999),
                    supplycost: Decimal::from_cents(rng.gen_range(100..=100_000)),
                    comment: text::comment(&mut rng, 40),
                });
            }
        }
    }

    /// Streams CUSTOMER rows.
    pub fn customers(&self, mut f: impl FnMut(RawCustomer)) {
        let mut rng = self.rng(6);
        let n = self.cardinalities().customers;
        for key in 1..=n as i64 {
            let nation = rng.gen_range(0..25);
            f(RawCustomer {
                key,
                name: format!("Customer#{key:09}"),
                address: text::comment(&mut rng, 20),
                nation: nation as i64,
                phone: text::phone(&mut rng, nation),
                acctbal: Decimal::from_cents(rng.gen_range(-99_999..=999_999)),
                mktsegment: text::SEGMENTS[rng.gen_range(0..text::SEGMENTS.len())],
                comment: text::comment(&mut rng, 60),
            });
        }
    }

    /// Streams ORDERS rows together with their LINEITEM rows (lineitem
    /// dates derive from the order date, so they are generated as a unit —
    /// as dbgen does).
    pub fn orders(&self, mut f: impl FnMut(RawOrder, Vec<RawLineitem>)) {
        let mut rng = self.rng(7);
        let c = self.cardinalities();
        for key in 1..=c.orders as i64 {
            let orderdate = rng.gen_range(START_DATE..=LAST_ORDER_DATE);
            let customer = rng.gen_range(1..=c.customers as i64);
            let nlines = rng.gen_range(1..=7);
            let mut lines = Vec::with_capacity(nlines);
            let mut total = Decimal::ZERO;
            let mut all_f = true;
            let mut all_o = true;
            for linenumber in 1..=nlines as i32 {
                let part = rng.gen_range(1..=c.parts as i64);
                // One of the part's four suppliers.
                let s = c.suppliers as i64;
                let i = rng.gen_range(0..4i64);
                let supplier = (part + i * (s / 4 + (part - 1) / s)) % s + 1;
                let quantity = rng.gen_range(1..=50i64);
                let extendedprice =
                    Decimal::from_mantissa(retail_price(part).mantissa() * quantity as i128);
                let discount = Decimal::from_cents(rng.gen_range(0..=10)); // 0.00 .. 0.10
                let tax = Decimal::from_cents(rng.gen_range(0..=8)); // 0.00 .. 0.08
                let shipdate = orderdate + rng.gen_range(1..=121);
                let commitdate = orderdate + rng.gen_range(30..=90);
                let receiptdate = shipdate + rng.gen_range(1..=30);
                let returnflag = if receiptdate <= CURRENT_DATE {
                    if rng.gen_bool(0.5) {
                        'R'
                    } else {
                        'A'
                    }
                } else {
                    'N'
                };
                let linestatus = if shipdate > CURRENT_DATE { 'O' } else { 'F' };
                all_f &= linestatus == 'F';
                all_o &= linestatus == 'O';
                total += extendedprice * (Decimal::ONE + tax) * (Decimal::ONE - discount);
                lines.push(RawLineitem {
                    order: key,
                    part,
                    supplier,
                    linenumber,
                    quantity: Decimal::from_int(quantity),
                    extendedprice,
                    discount,
                    tax,
                    returnflag,
                    linestatus,
                    shipdate,
                    commitdate,
                    receiptdate,
                    shipinstruct: text::INSTRUCTIONS[rng.gen_range(0..text::INSTRUCTIONS.len())],
                    shipmode: text::MODES[rng.gen_range(0..text::MODES.len())],
                    comment: text::comment(&mut rng, 27),
                });
            }
            let orderstatus = if all_f {
                'F'
            } else if all_o {
                'O'
            } else {
                'P'
            };
            f(
                RawOrder {
                    key,
                    customer,
                    orderstatus,
                    totalprice: total,
                    orderdate,
                    orderpriority: text::PRIORITIES[rng.gen_range(0..text::PRIORITIES.len())],
                    clerk: format!("Clerk#{:09}", rng.gen_range(1..=self.scaled(1000))),
                    shippriority: 0,
                    comment: text::comment(&mut rng, 48),
                },
                lines,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dates::date;

    #[test]
    fn cardinalities_scale() {
        let g = Generator::new(0.01);
        let c = g.cardinalities();
        assert_eq!(c.regions, 5);
        assert_eq!(c.nations, 25);
        assert_eq!(c.suppliers, 100);
        assert_eq!(c.parts, 2000);
        assert_eq!(c.partsupps, 8000);
        assert_eq!(c.customers, 1500);
        assert_eq!(c.orders, 15_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let g1 = Generator::new(0.001);
        let g2 = Generator::new(0.001);
        let (mut t1, mut t2) = (Vec::new(), Vec::new());
        g1.orders(|o, ls| t1.push((o.key, o.totalprice, ls.len())));
        g2.orders(|o, ls| t2.push((o.key, o.totalprice, ls.len())));
        assert_eq!(t1, t2);
    }

    #[test]
    fn lineitem_dates_are_consistent() {
        let g = Generator::new(0.001);
        g.orders(|o, lines| {
            for l in &lines {
                assert!(l.shipdate > o.orderdate);
                assert!(l.shipdate <= o.orderdate + 121);
                assert!(l.receiptdate > l.shipdate);
                assert_eq!(l.linestatus == 'O', l.shipdate > CURRENT_DATE);
                assert_eq!(l.returnflag == 'N', l.receiptdate > CURRENT_DATE);
            }
        });
    }

    #[test]
    fn q6_style_selectivity_is_in_range() {
        // Q6 predicate: shipdate in 1994, discount in [0.05, 0.07], qty < 24.
        let g = Generator::new(0.01);
        let (mut hits, mut total) = (0u64, 0u64);
        let lo = date(1994, 1, 1);
        let hi = date(1995, 1, 1);
        let dlo = Decimal::parse("0.05").unwrap();
        let dhi = Decimal::parse("0.07").unwrap();
        g.orders(|_, lines| {
            for l in &lines {
                total += 1;
                if l.shipdate >= lo
                    && l.shipdate < hi
                    && l.discount >= dlo
                    && l.discount <= dhi
                    && l.quantity < Decimal::from_int(24)
                {
                    hits += 1;
                }
            }
        });
        let sel = hits as f64 / total as f64;
        // ~1/7 (year) * 3/11 (discount) * 23/50 (quantity) ≈ 1.8 %.
        assert!(sel > 0.005 && sel < 0.04, "selectivity {sel}");
    }

    #[test]
    fn order_totalprice_matches_lineitems() {
        let g = Generator::new(0.001);
        g.orders(|o, lines| {
            let total: Decimal = lines
                .iter()
                .map(|l| l.extendedprice * (Decimal::ONE + l.tax) * (Decimal::ONE - l.discount))
                .sum();
            assert_eq!(o.totalprice, total);
        });
    }

    #[test]
    fn partsupp_suppliers_are_valid_and_distinct() {
        let g = Generator::new(0.01);
        let s = g.cardinalities().suppliers as i64;
        let mut seen_parts = std::collections::HashMap::<i64, Vec<i64>>::new();
        g.partsupps(|ps| {
            assert!((1..=s).contains(&ps.supplier), "supplier {}", ps.supplier);
            seen_parts.entry(ps.part).or_default().push(ps.supplier);
        });
        for (part, sups) in &seen_parts {
            assert_eq!(sups.len(), 4, "part {part}");
            let distinct: std::collections::HashSet<_> = sups.iter().collect();
            assert_eq!(distinct.len(), 4, "part {part} suppliers {sups:?}");
        }
    }

    #[test]
    fn retail_price_formula() {
        assert_eq!(retail_price(1), Decimal::from_cents(90_000 + 100));
        // Price always within the spec's rough band.
        for k in [1, 999, 1000, 20_001, 123_456] {
            let p = retail_price(k);
            assert!(p >= Decimal::from_cents(90_000) && p <= Decimal::from_cents(210_000));
        }
    }
}
