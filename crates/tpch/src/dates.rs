//! Calendar dates as epoch days (days since 1970-01-01).
//!
//! TPC-H date columns span 1992-01-01 .. 1998-12-31. Storing them as `i32`
//! epoch days makes range predicates integer comparisons — both the SMC
//! schemas and the columnstore use this encoding.

/// Days from civil date to epoch days (Howard Hinnant's algorithm).
pub const fn date(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32; // [0, 399]
    let mp = (m + 9) % 12; // March = 0
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i32 - 719468
}

/// Epoch days back to `(year, month, day)`.
pub fn civil(days: i32) -> (i32, u32, u32) {
    let z = days + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u32; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Formats an epoch day as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = civil(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// First order date in TPC-H (`STARTDATE`).
pub const START_DATE: i32 = date(1992, 1, 1);
/// Last permissible order date (`ENDDATE - 151 days` per the spec, so all
/// lineitem dates stay within 1998-12-31).
pub const LAST_ORDER_DATE: i32 = date(1998, 8, 2);
/// The `CURRENTDATE` constant used by return-flag generation.
pub const CURRENT_DATE: i32 = date(1995, 6, 17);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_anchors() {
        assert_eq!(date(1970, 1, 1), 0);
        assert_eq!(date(1970, 1, 2), 1);
        assert_eq!(date(1969, 12, 31), -1);
        assert_eq!(date(2000, 3, 1), 11017);
    }

    #[test]
    fn civil_round_trips() {
        for days in [
            date(1992, 1, 1),
            date(1995, 6, 17),
            date(1998, 12, 31),
            0,
            -1,
            100_000,
        ] {
            let (y, m, d) = civil(days);
            assert_eq!(date(y, m, d), days);
        }
    }

    #[test]
    fn leap_years_handled() {
        assert_eq!(date(1996, 2, 29) + 1, date(1996, 3, 1));
        assert_eq!(
            date(1900, 2, 28) + 1,
            date(1900, 3, 1),
            "1900 is not a leap year"
        );
        assert_eq!(
            date(2000, 2, 29) + 1,
            date(2000, 3, 1),
            "2000 is a leap year"
        );
    }

    #[test]
    fn formatting() {
        assert_eq!(format_date(date(1998, 12, 1)), "1998-12-01");
        assert_eq!(format_date(date(1992, 1, 31)), "1992-01-31");
    }

    #[test]
    fn tpch_constants_ordered() {
        let (start, current, last) = (START_DATE, CURRENT_DATE, LAST_ORDER_DATE);
        assert!(start < current);
        assert!(current < last);
        assert_eq!(format_date(START_DATE), "1992-01-01");
        assert_eq!(format_date(LAST_ORDER_DATE), "1998-08-02");
    }
}
