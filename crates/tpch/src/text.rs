//! TPC-H text pools: the fixed value lists of the specification plus a
//! small grammar for comment strings.

use smc_util::rng::Pcg32 as StdRng;

/// `N_NAME`/`N_REGIONKEY` per the TPC-H spec (nation → region index).
pub const NATIONS: &[(&str, usize)] = &[
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// `R_NAME` per the spec.
pub const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// `C_MKTSEGMENT` values.
pub const SEGMENTS: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

/// `O_ORDERPRIORITY` values.
pub const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// `L_SHIPINSTRUCT` values.
pub const INSTRUCTIONS: &[&str] = &[
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// `L_SHIPMODE` values.
pub const MODES: &[&str] = &["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// Part name syllables (`P_NAME` is five words from this list).
pub const PART_NAME_WORDS: &[&str] = &[
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "goldenrod",
    "green",
    "grey",
    "honeydew",
    "hot",
    "hotpink",
    "indian",
    "ivory",
    "khaki",
    "lace",
    "lavender",
    "lawn",
    "lemon",
    "light",
    "lime",
    "linen",
    "magenta",
    "maroon",
    "medium",
    "metallic",
    "midnight",
    "mint",
    "misty",
    "moccasin",
    "navajo",
    "navy",
    "olive",
    "orange",
    "orchid",
    "pale",
    "papaya",
    "peach",
    "peru",
    "pink",
    "plum",
    "powder",
    "puff",
    "purple",
    "red",
    "rose",
    "rosy",
    "royal",
    "saddle",
    "salmon",
    "sandy",
    "seashell",
    "sienna",
    "sky",
    "slate",
    "smoke",
    "snow",
    "spring",
    "steel",
    "tan",
    "thistle",
    "tomato",
    "turquoise",
    "violet",
    "wheat",
    "white",
    "yellow",
];

/// `P_TYPE` is one word from each of these three lists.
pub const TYPE_SYLLABLE_1: &[&str] = &["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// Second type syllable.
pub const TYPE_SYLLABLE_2: &[&str] = &["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// Third type syllable (Q2 filters on a `%BRASS` suffix).
pub const TYPE_SYLLABLE_3: &[&str] = &["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// `P_CONTAINER` syllables.
pub const CONTAINER_1: &[&str] = &["SM", "LG", "MED", "JUMBO", "WRAP"];
/// Second container syllable.
pub const CONTAINER_2: &[&str] = &["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

const COMMENT_WORDS: &[&str] = &[
    "the",
    "special",
    "pending",
    "furiously",
    "express",
    "requests",
    "deposits",
    "packages",
    "carefully",
    "quickly",
    "blithely",
    "slyly",
    "regular",
    "final",
    "ironic",
    "even",
    "bold",
    "silent",
    "unusual",
    "accounts",
    "theodolites",
    "platelets",
    "instructions",
    "dependencies",
    "foxes",
    "pinto",
    "beans",
    "warthogs",
    "courts",
    "dolphins",
    "multipliers",
    "sauternes",
    "asymptotes",
    "sleep",
    "wake",
    "cajole",
    "nag",
    "haggle",
    "integrate",
    "boost",
    "detect",
    "along",
    "among",
    "about",
    "above",
    "across",
    "after",
    "against",
];

/// Picks one element of a fixed pool.
pub fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

/// Generates pseudo-text of roughly `max_len` bytes (truncated at a word).
pub fn comment(rng: &mut StdRng, max_len: usize) -> String {
    let mut out = String::new();
    while out.len() < max_len.saturating_sub(12) {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(pick(rng, COMMENT_WORDS));
    }
    out.truncate(max_len);
    out
}

/// `P_NAME`: five distinct-ish name words.
pub fn part_name(rng: &mut StdRng) -> String {
    let mut words = Vec::with_capacity(5);
    for _ in 0..5 {
        words.push(pick(rng, PART_NAME_WORDS));
    }
    words.join(" ")
}

/// `P_TYPE`: three syllables.
pub fn part_type(rng: &mut StdRng) -> String {
    format!(
        "{} {} {}",
        pick(rng, TYPE_SYLLABLE_1),
        pick(rng, TYPE_SYLLABLE_2),
        pick(rng, TYPE_SYLLABLE_3)
    )
}

/// `P_CONTAINER`: two syllables.
pub fn container(rng: &mut StdRng) -> String {
    format!("{} {}", pick(rng, CONTAINER_1), pick(rng, CONTAINER_2))
}

/// Phone number in the spec's `CC-NNN-NNN-NNNN` shape.
pub fn phone(rng: &mut StdRng, nation: usize) -> String {
    format!(
        "{}-{}-{}-{}",
        nation + 10,
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10000)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_match_spec_sizes() {
        assert_eq!(NATIONS.len(), 25);
        assert_eq!(REGIONS.len(), 5);
        assert_eq!(SEGMENTS.len(), 5);
        assert_eq!(PRIORITIES.len(), 5);
        assert_eq!(MODES.len(), 7);
        assert!(NATIONS.iter().all(|(_, r)| *r < REGIONS.len()));
    }

    #[test]
    fn comment_respects_length_and_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let ca = comment(&mut a, 44);
        let cb = comment(&mut b, 44);
        assert_eq!(ca, cb);
        assert!(ca.len() <= 44);
        assert!(!ca.is_empty());
    }

    #[test]
    fn type_strings_cover_brass() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut brass = 0;
        for _ in 0..1000 {
            if part_type(&mut rng).ends_with("BRASS") {
                brass += 1;
            }
        }
        // 1/5 of types end in BRASS.
        assert!((150..250).contains(&brass), "brass count {brass}");
    }

    #[test]
    fn phone_has_nation_prefix() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = phone(&mut rng, 5);
        assert!(p.starts_with("15-"));
    }
}
