//! Q1–Q6 over the columnstore engine — the Fig 13 RDBMS plans.
//!
//! These are classic relational plans: columnar scans with segment
//! elimination on the clustered date columns, and *value-based* hash joins
//! (the paper's explanation for why SMC reference joins win the join-heavy
//! queries while the RDBMS wins the index-selective ones).

use std::collections::{HashMap, HashSet};

use smc_memory::Decimal;

use super::*;
use crate::csdb::CsDb;

fn dec(m: i128) -> Decimal {
    Decimal::from_mantissa(m)
}

/// Q1: pruned scan on the clustered shipdate, group into the 6-slot table.
pub fn q1(db: &CsDb, p: &Params) -> Vec<Q1Row> {
    let _span = super::qspan("cs.q1");
    let cutoff = q1_cutoff(p) as i64;
    let li = &db.lineitem;
    let shipdate = li.i64_values("l_shipdate");
    let flags = li.str_column("l_returnflag");
    let statuses = li.str_column("l_linestatus");
    let qty = li.decimal_slice("l_quantity");
    let price = li.decimal_slice("l_extendedprice");
    let discount = li.decimal_slice("l_discount");
    let tax = li.decimal_slice("l_tax");
    let mut table = [Q1Acc::default(); 6];
    for (start, end) in li.prune("l_shipdate", i64::MIN, cutoff) {
        for row in start..end {
            if shipdate[row] > cutoff {
                continue;
            }
            let flag = flags.get(row).as_bytes()[0];
            let status = statuses.get(row).as_bytes()[0];
            table[q1_slot(flag, status)].fold(
                dec(qty[row]),
                dec(price[row]),
                dec(discount[row]),
                dec(tax[row]),
            );
        }
    }
    q1_rows_from_table(&table)
}

/// Q2: dimension maps then two partsupp passes with value joins.
pub fn q2(db: &CsDb, p: &Params) -> Vec<Q2Row> {
    let _span = super::qspan("cs.q2");
    // region -> qualifying nation keys
    let region_keys: HashSet<i64> = {
        let names = db.region.str_column("r_name");
        let keys = db.region.i64_slice("r_regionkey");
        (0..db.region.rows())
            .filter(|&r| names.get(r) == p.q2_region)
            .map(|r| keys[r])
            .collect()
    };
    let nation_in_region: HashMap<i64, String> = {
        let keys = db.nation.i64_slice("n_nationkey");
        let names = db.nation.str_column("n_name");
        let regions = db.nation.i64_slice("n_regionkey");
        (0..db.nation.rows())
            .filter(|&r| region_keys.contains(&regions[r]))
            .map(|r| (keys[r], names.get(r).to_string()))
            .collect()
    };
    // suppliers in the region: suppkey -> (name, acctbal, nation name)
    let suppliers: HashMap<i64, (String, Decimal, String)> = {
        let keys = db.supplier.i64_slice("s_suppkey");
        let names = db.supplier.str_column("s_name");
        let nations = db.supplier.i64_slice("s_nationkey");
        let bals = db.supplier.decimal_slice("s_acctbal");
        (0..db.supplier.rows())
            .filter_map(|r| {
                nation_in_region
                    .get(&nations[r])
                    .map(|n| (keys[r], (names.get(r).to_string(), dec(bals[r]), n.clone())))
            })
            .collect()
    };
    // qualifying parts
    let parts: HashSet<i64> = {
        let keys = db.part.i64_slice("p_partkey");
        let sizes = db.part.i64_slice("p_size");
        let types = db.part.str_column("p_type");
        (0..db.part.rows())
            .filter(|&r| sizes[r] == p.q2_size as i64 && types.get(r).ends_with(p.q2_type.as_str()))
            .map(|r| keys[r])
            .collect()
    };
    let ps_part = db.partsupp.i64_slice("ps_partkey");
    let ps_supp = db.partsupp.i64_slice("ps_suppkey");
    let ps_cost = db.partsupp.decimal_slice("ps_supplycost");
    let mut min_cost: HashMap<i64, Decimal> = HashMap::new();
    for row in 0..db.partsupp.rows() {
        if !parts.contains(&ps_part[row]) || !suppliers.contains_key(&ps_supp[row]) {
            continue;
        }
        let cost = dec(ps_cost[row]);
        min_cost
            .entry(ps_part[row])
            .and_modify(|c| *c = (*c).min(cost))
            .or_insert(cost);
    }
    let mut rows = Vec::new();
    for row in 0..db.partsupp.rows() {
        let Some(&min) = min_cost.get(&ps_part[row]) else {
            continue;
        };
        if dec(ps_cost[row]) != min {
            continue;
        }
        let Some((name, bal, nation)) = suppliers.get(&ps_supp[row]) else {
            continue;
        };
        rows.push(Q2Row {
            acctbal: *bal,
            supplier: name.clone(),
            nation: nation.clone(),
            partkey: ps_part[row],
        });
    }
    q2_finalize(rows)
}

/// Q3: segment filter → order hash table → pruned lineitem probe.
pub fn q3(db: &CsDb, p: &Params) -> Vec<Q3Row> {
    let _span = super::qspan("cs.q3");
    let custs: HashSet<i64> = {
        let segs = db.customer.str_column("c_mktsegment");
        let keys = db.customer.i64_slice("c_custkey");
        // Dictionary fast path: compare codes, not strings.
        let Some(code) = segs.code_of(&p.q3_segment) else {
            return Vec::new();
        };
        (0..db.customer.rows())
            .filter(|&r| segs.code(r) == code)
            .map(|r| keys[r])
            .collect()
    };
    // Orders before the date, belonging to those customers.
    let o_date = db.orders.i64_values("o_orderdate");
    let o_key = db.orders.i64_slice("o_orderkey");
    let o_cust = db.orders.i64_slice("o_custkey");
    let o_ship = db.orders.i64_slice("o_shippriority");
    let mut order_info: HashMap<i64, (i32, i32)> = HashMap::new();
    for (start, end) in db
        .orders
        .prune("o_orderdate", i64::MIN, p.q3_date as i64 - 1)
    {
        for row in start..end {
            if o_date[row] < p.q3_date as i64 && custs.contains(&o_cust[row]) {
                order_info.insert(o_key[row], (o_date[row] as i32, o_ship[row] as i32));
            }
        }
    }
    // Lineitems after the date, pruned on the clustered shipdate.
    let l_ship = db.lineitem.i64_values("l_shipdate");
    let l_key = db.lineitem.i64_slice("l_orderkey");
    let l_price = db.lineitem.decimal_slice("l_extendedprice");
    let l_disc = db.lineitem.decimal_slice("l_discount");
    let mut groups: HashMap<i64, Q3Row> = HashMap::new();
    for (start, end) in db
        .lineitem
        .prune("l_shipdate", p.q3_date as i64 + 1, i64::MAX)
    {
        for row in start..end {
            if l_ship[row] <= p.q3_date as i64 {
                continue;
            }
            let Some(&(orderdate, shippriority)) = order_info.get(&l_key[row]) else {
                continue;
            };
            let revenue = dec(l_price[row]) * (Decimal::ONE - dec(l_disc[row]));
            groups
                .entry(l_key[row])
                .and_modify(|r| r.revenue += revenue)
                .or_insert(Q3Row {
                    orderkey: l_key[row],
                    revenue,
                    orderdate,
                    shippriority,
                });
        }
    }
    q3_finalize(groups)
}

/// Q4: pruned quarter of orders, semi-joined against late lineitems.
pub fn q4(db: &CsDb, p: &Params) -> Vec<Q4Row> {
    let _span = super::qspan("cs.q4");
    let end = plus_months(p.q4_date, 3);
    // Late lineitems → orderkey set (no useful pruning column here).
    let l_commit = db.lineitem.i64_slice("l_commitdate");
    let l_receipt = db.lineitem.i64_slice("l_receiptdate");
    let l_key = db.lineitem.i64_slice("l_orderkey");
    let mut late: HashSet<i64> = HashSet::new();
    for row in 0..db.lineitem.rows() {
        if l_commit[row] < l_receipt[row] {
            late.insert(l_key[row]);
        }
    }
    // Pruned scan of the quarter's orders.
    let o_date = db.orders.i64_values("o_orderdate");
    let o_key = db.orders.i64_slice("o_orderkey");
    let o_pri = db.orders.str_column("o_orderpriority");
    let mut counts = [0u64; 5];
    for (start, end_row) in db
        .orders
        .prune("o_orderdate", p.q4_date as i64, end as i64 - 1)
    {
        for row in start..end_row {
            if o_date[row] < p.q4_date as i64 || o_date[row] >= end as i64 {
                continue;
            }
            if late.contains(&o_key[row]) {
                let pri = crate::text::PRIORITIES
                    .iter()
                    .position(|x| *x == o_pri.get(row))
                    .unwrap();
                counts[pri] += 1;
            }
        }
    }
    q4_finalize(counts)
}

/// Q5: dimension hash maps, pruned orders, lineitem probe with the
/// customer-nation = supplier-nation condition.
pub fn q5(db: &CsDb, p: &Params) -> Vec<Q5Row> {
    let _span = super::qspan("cs.q5");
    let end = plus_months(p.q5_date, 12);
    let region_keys: HashSet<i64> = {
        let names = db.region.str_column("r_name");
        let keys = db.region.i64_slice("r_regionkey");
        (0..db.region.rows())
            .filter(|&r| names.get(r) == p.q5_region)
            .map(|r| keys[r])
            .collect()
    };
    let nations: HashMap<i64, String> = {
        let keys = db.nation.i64_slice("n_nationkey");
        let names = db.nation.str_column("n_name");
        let regions = db.nation.i64_slice("n_regionkey");
        (0..db.nation.rows())
            .filter(|&r| region_keys.contains(&regions[r]))
            .map(|r| (keys[r], names.get(r).to_string()))
            .collect()
    };
    let supp_nation: HashMap<i64, i64> = {
        let keys = db.supplier.i64_slice("s_suppkey");
        let nkeys = db.supplier.i64_slice("s_nationkey");
        (0..db.supplier.rows())
            .filter(|&r| nations.contains_key(&nkeys[r]))
            .map(|r| (keys[r], nkeys[r]))
            .collect()
    };
    let cust_nation: HashMap<i64, i64> = {
        let keys = db.customer.i64_slice("c_custkey");
        let nkeys = db.customer.i64_slice("c_nationkey");
        (0..db.customer.rows())
            .map(|r| (keys[r], nkeys[r]))
            .collect()
    };
    // Orders within the year (pruned on the clustered orderdate).
    let o_date = db.orders.i64_values("o_orderdate");
    let o_key = db.orders.i64_slice("o_orderkey");
    let o_cust = db.orders.i64_slice("o_custkey");
    let mut order_cust_nation: HashMap<i64, i64> = HashMap::new();
    for (start, end_row) in db
        .orders
        .prune("o_orderdate", p.q5_date as i64, end as i64 - 1)
    {
        for row in start..end_row {
            if o_date[row] >= p.q5_date as i64 && o_date[row] < end as i64 {
                order_cust_nation.insert(o_key[row], cust_nation[&o_cust[row]]);
            }
        }
    }
    let l_key = db.lineitem.i64_slice("l_orderkey");
    let l_supp = db.lineitem.i64_slice("l_suppkey");
    let l_price = db.lineitem.decimal_slice("l_extendedprice");
    let l_disc = db.lineitem.decimal_slice("l_discount");
    let mut groups: HashMap<String, Decimal> = HashMap::new();
    for row in 0..db.lineitem.rows() {
        let Some(&cnation) = order_cust_nation.get(&l_key[row]) else {
            continue;
        };
        let Some(&snation) = supp_nation.get(&l_supp[row]) else {
            continue;
        };
        if cnation != snation {
            continue;
        }
        let revenue = dec(l_price[row]) * (Decimal::ONE - dec(l_disc[row]));
        *groups.entry(nations[&snation].clone()).or_default() += revenue;
    }
    q5_finalize(groups)
}

/// Q6: the RDBMS showcase — pruned scan on the clustered shipdate.
pub fn q6(db: &CsDb, p: &Params) -> Decimal {
    let _span = super::qspan("cs.q6");
    let end = plus_months(p.q6_date, 12);
    let lo = p.q6_discount - Decimal::parse("0.01").unwrap();
    let hi = p.q6_discount + Decimal::parse("0.01").unwrap();
    let shipdate = db.lineitem.i64_values("l_shipdate");
    let discount = db.lineitem.decimal_slice("l_discount");
    let qty = db.lineitem.decimal_slice("l_quantity");
    let price = db.lineitem.decimal_slice("l_extendedprice");
    let mut revenue = Decimal::ZERO;
    for (start, end_row) in db
        .lineitem
        .prune("l_shipdate", p.q6_date as i64, end as i64 - 1)
    {
        for row in start..end_row {
            if shipdate[row] >= p.q6_date as i64
                && shipdate[row] < end as i64
                && dec(discount[row]) >= lo
                && dec(discount[row]) <= hi
                && dec(qty[row]) < p.q6_quantity
            {
                revenue += dec(price[row]) * dec(discount[row]);
            }
        }
    }
    revenue
}

// ---------------------------------------------------------------------
// Parallel variants (row-range morsels over column slices, smc-exec)
// ---------------------------------------------------------------------

/// Rows per morsel for the parallel columnstore scans.
const CS_MORSEL_ROWS: usize = 16 * 1024;

/// Subdivides pruned `(start, end)` row ranges into fixed-size morsels.
fn split_ranges(ranges: Vec<(usize, usize)>, rows: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (start, end) in ranges {
        let mut s = start;
        while s < end {
            let e = (s + rows).min(end);
            out.push((s, e));
            s = e;
        }
    }
    out
}

/// Q1 in parallel: the pruned row ranges are split into fixed-size morsels
/// scanned over the shared column slices.
pub fn q1_par(db: &CsDb, p: &Params, pool: &smc_exec::WorkerPool) -> Vec<Q1Row> {
    let _span = super::qspan("cs.q1_par");
    let cutoff = q1_cutoff(p) as i64;
    let li = &db.lineitem;
    let shipdate = li.i64_values("l_shipdate");
    let flags = li.str_column("l_returnflag");
    let statuses = li.str_column("l_linestatus");
    let qty = li.decimal_slice("l_quantity");
    let price = li.decimal_slice("l_extendedprice");
    let discount = li.decimal_slice("l_discount");
    let tax = li.decimal_slice("l_tax");
    let morsels = split_ranges(li.prune("l_shipdate", i64::MIN, cutoff), CS_MORSEL_ROWS);
    let table = smc_exec::par_fold_chunks(
        pool,
        &morsels,
        1,
        || [Q1Acc::default(); 6],
        |t, ranges| {
            for &(start, end) in ranges {
                for row in start..end {
                    if shipdate[row] > cutoff {
                        continue;
                    }
                    let flag = flags.get(row).as_bytes()[0];
                    let status = statuses.get(row).as_bytes()[0];
                    t[q1_slot(flag, status)].fold(
                        dec(qty[row]),
                        dec(price[row]),
                        dec(discount[row]),
                        dec(tax[row]),
                    );
                }
            }
        },
        |into, from| q1_merge_tables(into, &from),
    );
    q1_rows_from_table(&table)
}

/// Q6 in parallel over the pruned row-range morsels.
pub fn q6_par(db: &CsDb, p: &Params, pool: &smc_exec::WorkerPool) -> Decimal {
    let _span = super::qspan("cs.q6_par");
    let end = plus_months(p.q6_date, 12);
    let lo = p.q6_discount - Decimal::parse("0.01").unwrap();
    let hi = p.q6_discount + Decimal::parse("0.01").unwrap();
    let shipdate = db.lineitem.i64_values("l_shipdate");
    let discount = db.lineitem.decimal_slice("l_discount");
    let qty = db.lineitem.decimal_slice("l_quantity");
    let price = db.lineitem.decimal_slice("l_extendedprice");
    let morsels = split_ranges(
        db.lineitem
            .prune("l_shipdate", p.q6_date as i64, end as i64 - 1),
        CS_MORSEL_ROWS,
    );
    smc_exec::par_fold_chunks(
        pool,
        &morsels,
        1,
        || Decimal::ZERO,
        |revenue, ranges| {
            for &(start, end_row) in ranges {
                for row in start..end_row {
                    if shipdate[row] >= p.q6_date as i64
                        && shipdate[row] < end as i64
                        && dec(discount[row]) >= lo
                        && dec(discount[row]) <= hi
                        && dec(qty[row]) < p.q6_quantity
                    {
                        *revenue += dec(price[row]) * dec(discount[row]);
                    }
                }
            }
        },
        |into, from| *into += from,
    )
}
