//! Q1–Q6 over the managed (GC) database — the paper's `List<T>` and
//! `ConcurrentDictionary` baselines, with the same compiled plans as the
//! SMC versions but enumerating handle lists and chasing arena pointers.

use std::collections::{HashMap, HashSet};

use smc_memory::Decimal;

use super::*;
use crate::gcdb::GcDb;

/// Which collection the lineitem enumeration runs over (Fig 11 series).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnumVia {
    /// `GcList` — C#'s `List<T>`.
    List,
    /// `GcConcurrentDictionary` — keyed, sharded enumeration.
    Dict,
}

fn for_each_lineitem(db: &GcDb, via: EnumVia, f: impl FnMut(&crate::gcdb::GcLineitem)) {
    let guard = db.heap.enter();
    match via {
        EnumVia::List => {
            db.lineitems.for_each(&guard, f);
        }
        EnumVia::Dict => {
            db.lineitem_dict.for_each(&guard, f);
        }
    }
}

/// Q1 over the managed database.
pub fn q1(db: &GcDb, p: &Params, via: EnumVia) -> Vec<Q1Row> {
    let _span = super::qspan("gc.q1");
    let cutoff = q1_cutoff(p);
    let mut table = [Q1Acc::default(); 6];
    for_each_lineitem(db, via, |l| {
        if l.shipdate <= cutoff {
            table[q1_slot(l.returnflag, l.linestatus)].fold(
                l.quantity,
                l.extendedprice,
                l.discount,
                l.tax,
            );
        }
    });
    q1_rows_from_table(&table)
}

/// Q2 over the managed database (handle joins).
pub fn q2(db: &GcDb, p: &Params) -> Vec<Q2Row> {
    let _span = super::qspan("gc.q2");
    let guard = db.heap.enter();
    let mut min_cost: HashMap<i64, Decimal> = HashMap::new();
    db.partsupps.for_each(&guard, |ps| {
        let Some(part) = db.part_arena.get(ps.part) else {
            return;
        };
        if part.size != p.q2_size || !part.typ.ends_with(p.q2_type.as_str()) {
            return;
        }
        let Some(supplier) = db.supplier_arena.get(ps.supplier) else {
            return;
        };
        let Some(nation) = db.nation_arena.get(supplier.nation) else {
            return;
        };
        let Some(region) = db.region_arena.get(nation.region) else {
            return;
        };
        if region.name != p.q2_region {
            return;
        }
        min_cost
            .entry(ps.partkey)
            .and_modify(|c| *c = (*c).min(ps.supplycost))
            .or_insert(ps.supplycost);
    });
    let mut rows = Vec::new();
    db.partsupps.for_each(&guard, |ps| {
        let Some(&min) = min_cost.get(&ps.partkey) else {
            return;
        };
        if ps.supplycost != min {
            return;
        }
        let Some(supplier) = db.supplier_arena.get(ps.supplier) else {
            return;
        };
        let Some(nation) = db.nation_arena.get(supplier.nation) else {
            return;
        };
        let Some(region) = db.region_arena.get(nation.region) else {
            return;
        };
        if region.name != p.q2_region {
            return;
        }
        rows.push(Q2Row {
            acctbal: supplier.acctbal,
            supplier: supplier.name.clone(),
            nation: nation.name.clone(),
            partkey: ps.partkey,
        });
    });
    q2_finalize(rows)
}

/// Q3 over the managed database.
pub fn q3(db: &GcDb, p: &Params, via: EnumVia) -> Vec<Q3Row> {
    let _span = super::qspan("gc.q3");
    let seg = crate::text::SEGMENTS
        .iter()
        .position(|s| *s == p.q3_segment)
        .unwrap() as u8;
    let mut groups: HashMap<i64, Q3Row> = HashMap::new();
    for_each_lineitem(db, via, |l| {
        if l.shipdate <= p.q3_date {
            return;
        }
        let Some(o) = db.order_arena.get(l.order) else {
            return;
        };
        if o.orderdate >= p.q3_date {
            return;
        }
        let Some(c) = db.customer_arena.get(o.customer) else {
            return;
        };
        if c.mktsegment != seg {
            return;
        }
        let revenue = l.extendedprice * (Decimal::ONE - l.discount);
        groups
            .entry(l.orderkey)
            .and_modify(|r| r.revenue += revenue)
            .or_insert(Q3Row {
                orderkey: l.orderkey,
                revenue,
                orderdate: o.orderdate,
                shippriority: o.shippriority,
            });
    });
    q3_finalize(groups)
}

/// Q4 over the managed database.
pub fn q4(db: &GcDb, p: &Params, via: EnumVia) -> Vec<Q4Row> {
    let _span = super::qspan("gc.q4");
    let end = plus_months(p.q4_date, 3);
    let mut late: HashSet<i64> = HashSet::new();
    let mut counts = [0u64; 5];
    for_each_lineitem(db, via, |l| {
        if l.commitdate >= l.receiptdate || late.contains(&l.orderkey) {
            return;
        }
        let Some(o) = db.order_arena.get(l.order) else {
            return;
        };
        if o.orderdate < p.q4_date || o.orderdate >= end {
            return;
        }
        late.insert(l.orderkey);
        counts[o.orderpriority as usize] += 1;
    });
    q4_finalize(counts)
}

/// Q5 over the managed database.
pub fn q5(db: &GcDb, p: &Params, via: EnumVia) -> Vec<Q5Row> {
    let _span = super::qspan("gc.q5");
    let end = plus_months(p.q5_date, 12);
    let mut groups: HashMap<String, Decimal> = HashMap::new();
    for_each_lineitem(db, via, |l| {
        let Some(o) = db.order_arena.get(l.order) else {
            return;
        };
        if o.orderdate < p.q5_date || o.orderdate >= end {
            return;
        }
        let Some(s) = db.supplier_arena.get(l.supplier) else {
            return;
        };
        let Some(n) = db.nation_arena.get(s.nation) else {
            return;
        };
        let Some(r) = db.region_arena.get(n.region) else {
            return;
        };
        if r.name != p.q5_region {
            return;
        }
        let Some(c) = db.customer_arena.get(o.customer) else {
            return;
        };
        if c.nationkey != s.nationkey {
            return;
        }
        let revenue = l.extendedprice * (Decimal::ONE - l.discount);
        *groups.entry(n.name.clone()).or_default() += revenue;
    });
    q5_finalize(groups)
}

/// Q6 over the managed database.
pub fn q6(db: &GcDb, p: &Params, via: EnumVia) -> Decimal {
    let _span = super::qspan("gc.q6");
    let end = plus_months(p.q6_date, 12);
    let lo = p.q6_discount - Decimal::parse("0.01").unwrap();
    let hi = p.q6_discount + Decimal::parse("0.01").unwrap();
    let mut revenue = Decimal::ZERO;
    for_each_lineitem(db, via, |l| {
        if l.shipdate >= p.q6_date
            && l.shipdate < end
            && l.discount >= lo
            && l.discount <= hi
            && l.quantity < p.q6_quantity
        {
            revenue += l.extendedprice * l.discount;
        }
    });
    revenue
}

// ---------------------------------------------------------------------
// Parallel variants (chunked handle-list morsels, smc-exec)
// ---------------------------------------------------------------------

/// Handles per morsel for the parallel list scans.
const GC_CHUNK: usize = 4096;

/// Q1 in parallel over the managed list: the handle vector is snapshotted
/// under the heap guard and chunked into morsels; workers chase arena
/// pointers exactly like the sequential enumeration. The caller's guard
/// pins the world for the whole scan, so no sweep can run under the
/// workers.
pub fn q1_par(db: &GcDb, p: &Params, pool: &smc_exec::WorkerPool) -> Vec<Q1Row> {
    let _span = super::qspan("gc.q1_par");
    let cutoff = q1_cutoff(p);
    let guard = db.heap.enter();
    let handles = db.lineitems.snapshot_handles(&guard);
    let arena = db.lineitems.arena();
    let table = smc_exec::par_fold_chunks(
        pool,
        &handles,
        GC_CHUNK,
        || [Q1Acc::default(); 6],
        |t, chunk| {
            for &h in chunk {
                let Some(l) = arena.get(h) else { continue };
                if l.shipdate <= cutoff {
                    t[q1_slot(l.returnflag, l.linestatus)].fold(
                        l.quantity,
                        l.extendedprice,
                        l.discount,
                        l.tax,
                    );
                }
            }
        },
        |into, from| q1_merge_tables(into, &from),
    );
    drop(guard);
    q1_rows_from_table(&table)
}

/// Q6 in parallel over the managed list.
pub fn q6_par(db: &GcDb, p: &Params, pool: &smc_exec::WorkerPool) -> Decimal {
    let _span = super::qspan("gc.q6_par");
    let end = plus_months(p.q6_date, 12);
    let lo = p.q6_discount - Decimal::parse("0.01").unwrap();
    let hi = p.q6_discount + Decimal::parse("0.01").unwrap();
    let guard = db.heap.enter();
    let handles = db.lineitems.snapshot_handles(&guard);
    let arena = db.lineitems.arena();
    smc_exec::par_fold_chunks(
        pool,
        &handles,
        GC_CHUNK,
        || Decimal::ZERO,
        |revenue, chunk| {
            for &h in chunk {
                let Some(l) = arena.get(h) else { continue };
                if l.shipdate >= p.q6_date
                    && l.shipdate < end
                    && l.discount >= lo
                    && l.discount <= hi
                    && l.quantity < p.q6_quantity
                {
                    *revenue += l.extendedprice * l.discount;
                }
            }
        },
        |into, from| *into += from,
    )
}
