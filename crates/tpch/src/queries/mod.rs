//! The object-oriented adaptations of TPC-H queries Q1–Q6 (§7), one
//! implementation per backend:
//!
//! * [`smc_q`] — compiled queries over the SMC database: the "SMC (C#)" and
//!   "SMC (unsafe C#)" series of Fig 11, plus the direct-pointer (§6) and
//!   columnar (§4.1) variants of Fig 12, plus interpreted-LINQ versions.
//! * [`gc_q`] — the same plans over the managed database, enumerating via
//!   `GcList` or `GcConcurrentDictionary` (the List / C.Dictionary series).
//! * [`cs_q`] — value-based relational plans over the columnstore engine
//!   (the SQL Server stand-in of Fig 13).
//!
//! Every implementation returns the same row types with exact `Decimal`
//! arithmetic, so the test suite asserts bit-identical answers across all
//! backends — the strongest cross-validation the reproduction has.

pub mod cs_q;
pub mod gc_q;
pub mod smc_q;

use smc_memory::Decimal;
use smc_obs::{Histogram, Span};

use crate::dates::date;

/// Cross-backend per-query latency distribution, in nanoseconds. Every
/// query implementation opens a [`qspan`] that feeds this histogram, so a
/// benchmark can report p50/p95/p99 query latency without per-call plumbing.
pub static QUERY_LATENCY_NS: Histogram = Histogram::new();

/// Opens a per-query observation span. On drop it emits a
/// [`QuerySpan`](smc_obs::Event::QuerySpan) trace event (when tracing is
/// enabled) and records the latency into [`QUERY_LATENCY_NS`].
pub fn qspan(label: &str) -> Span<'static> {
    Span::with_histogram(label, &QUERY_LATENCY_NS)
}

/// Query parameters (TPC-H validation values by default).
#[derive(Debug, Clone)]
pub struct Params {
    /// Q1: `DELTA` days subtracted from 1998-12-01.
    pub q1_delta: i32,
    /// Q2: part size.
    pub q2_size: i32,
    /// Q2: part type suffix.
    pub q2_type: String,
    /// Q2: region name.
    pub q2_region: String,
    /// Q3: market segment.
    pub q3_segment: String,
    /// Q3: date split point.
    pub q3_date: i32,
    /// Q4: quarter start.
    pub q4_date: i32,
    /// Q5: region name.
    pub q5_region: String,
    /// Q5: year start.
    pub q5_date: i32,
    /// Q6: year start.
    pub q6_date: i32,
    /// Q6: discount midpoint.
    pub q6_discount: Decimal,
    /// Q6: quantity bound.
    pub q6_quantity: Decimal,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            q1_delta: 90,
            q2_size: 15,
            q2_type: "BRASS".to_string(),
            q2_region: "EUROPE".to_string(),
            q3_segment: "BUILDING".to_string(),
            q3_date: date(1995, 3, 15),
            q4_date: date(1993, 7, 1),
            q5_region: "ASIA".to_string(),
            q5_date: date(1994, 1, 1),
            q6_date: date(1994, 1, 1),
            q6_discount: Decimal::parse("0.06").unwrap(),
            q6_quantity: Decimal::from_int(24),
        }
    }
}

/// Q1 cutoff date: `1998-12-01 - delta days`.
pub fn q1_cutoff(p: &Params) -> i32 {
    date(1998, 12, 1) - p.q1_delta
}

/// Adds three months to an epoch day (for Q4's quarter).
pub fn plus_months(day: i32, months: u32) -> i32 {
    let (y, m, d) = crate::dates::civil(day);
    let total = (m - 1 + months) as i32;
    date(y + total / 12, (total % 12) as u32 + 1, d)
}

/// One Q1 output group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Q1Row {
    /// `l_returnflag` of this group.
    pub returnflag: u8,
    /// `l_linestatus` of this group.
    pub linestatus: u8,
    /// `sum(l_quantity)`.
    pub sum_qty: Decimal,
    /// `sum(l_extendedprice)`.
    pub sum_base_price: Decimal,
    /// `sum(l_extendedprice * (1 - l_discount))`.
    pub sum_disc_price: Decimal,
    /// `sum(l_extendedprice * (1 - l_discount) * (1 + l_tax))`.
    pub sum_charge: Decimal,
    /// `sum(l_discount)` (feeds [`avg_disc`](Q1Row::avg_disc)).
    pub sum_discount: Decimal,
    /// `count(*)` of the group.
    pub count: u64,
}

impl Q1Row {
    /// Average quantity (derived, as the paper's output shows it).
    pub fn avg_qty(&self) -> Decimal {
        self.sum_qty / Decimal::from_int(self.count as i64)
    }
    /// Average price.
    pub fn avg_price(&self) -> Decimal {
        self.sum_base_price / Decimal::from_int(self.count as i64)
    }
    /// Average discount.
    pub fn avg_disc(&self) -> Decimal {
        self.sum_discount / Decimal::from_int(self.count as i64)
    }
}

/// Accumulator shared by every Q1 implementation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Q1Acc {
    /// Running `sum(l_quantity)`.
    pub sum_qty: Decimal,
    /// Running `sum(l_extendedprice)`.
    pub sum_base: Decimal,
    /// Running discounted-price sum.
    pub sum_disc_price: Decimal,
    /// Running charge sum (discounted price with tax).
    pub sum_charge: Decimal,
    /// Running `sum(l_discount)`.
    pub sum_discount: Decimal,
    /// Rows folded so far.
    pub count: u64,
}

impl Q1Acc {
    /// Folds one lineitem into the group.
    #[inline]
    pub fn fold(&mut self, qty: Decimal, price: Decimal, discount: Decimal, tax: Decimal) {
        let disc_price = price * (Decimal::ONE - discount);
        self.sum_qty += qty;
        self.sum_base += price;
        self.sum_disc_price += disc_price;
        self.sum_charge += disc_price * (Decimal::ONE + tax);
        self.sum_discount += discount;
        self.count += 1;
    }

    /// Merges another partial accumulator into this one (the parallel
    /// reduce step). Decimal addition is exact integer arithmetic on the
    /// mantissa, so merge order cannot change the result — parallel Q1 is
    /// bit-identical to sequential.
    #[inline]
    pub fn merge(&mut self, other: &Q1Acc) {
        self.sum_qty += other.sum_qty;
        self.sum_base += other.sum_base;
        self.sum_disc_price += other.sum_disc_price;
        self.sum_charge += other.sum_charge;
        self.sum_discount += other.sum_discount;
        self.count += other.count;
    }
}

/// Merges a worker's 6-slot Q1 table into the coordinator's.
pub fn q1_merge_tables(into: &mut [Q1Acc; 6], from: &[Q1Acc; 6]) {
    for (a, b) in into.iter_mut().zip(from.iter()) {
        a.merge(b);
    }
}

/// Finalizes a 6-slot Q1 group table (indexed `flag_idx * 2 + status_idx`)
/// into sorted output rows. Flags order: A, N, R; status order: F, O.
pub fn q1_rows_from_table(table: &[Q1Acc; 6]) -> Vec<Q1Row> {
    const FLAGS: [u8; 3] = [b'A', b'N', b'R'];
    const STATUS: [u8; 2] = [b'F', b'O'];
    let mut out = Vec::new();
    for (fi, &flag) in FLAGS.iter().enumerate() {
        for (si, &status) in STATUS.iter().enumerate() {
            let acc = &table[fi * 2 + si];
            if acc.count == 0 {
                continue;
            }
            out.push(Q1Row {
                returnflag: flag,
                linestatus: status,
                sum_qty: acc.sum_qty,
                sum_base_price: acc.sum_base,
                sum_disc_price: acc.sum_disc_price,
                sum_charge: acc.sum_charge,
                sum_discount: acc.sum_discount,
                count: acc.count,
            });
        }
    }
    out
}

/// Index of a (returnflag, linestatus) pair in the 6-slot Q1 table.
#[inline]
pub fn q1_slot(returnflag: u8, linestatus: u8) -> usize {
    let fi = match returnflag {
        b'A' => 0,
        b'N' => 1,
        _ => 2,
    };
    let si = usize::from(linestatus == b'O');
    fi * 2 + si
}

/// One Q2 output row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q2Row {
    /// `s_acctbal` of the winning supplier.
    pub acctbal: Decimal,
    /// `s_name`.
    pub supplier: String,
    /// `n_name`.
    pub nation: String,
    /// `p_partkey`.
    pub partkey: i64,
}

/// Sorts and truncates Q2 rows per the spec (acctbal desc, nation,
/// supplier, partkey; top 100).
pub fn q2_finalize(mut rows: Vec<Q2Row>) -> Vec<Q2Row> {
    rows.sort_by(|a, b| {
        b.acctbal
            .cmp(&a.acctbal)
            .then_with(|| a.nation.cmp(&b.nation))
            .then_with(|| a.supplier.cmp(&b.supplier))
            .then_with(|| a.partkey.cmp(&b.partkey))
    });
    rows.truncate(100);
    rows
}

/// One Q3 output row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Q3Row {
    /// `l_orderkey` of the group.
    pub orderkey: i64,
    /// `sum(l_extendedprice * (1 - l_discount))`.
    pub revenue: Decimal,
    /// `o_orderdate` (epoch day).
    pub orderdate: i32,
    /// `o_shippriority`.
    pub shippriority: i32,
}

/// Sorts and truncates Q3 rows (revenue desc, orderdate; top 10).
pub fn q3_finalize(groups: std::collections::HashMap<i64, Q3Row>) -> Vec<Q3Row> {
    let mut rows: Vec<Q3Row> = groups.into_values().collect();
    rows.sort_by(|a, b| {
        b.revenue
            .cmp(&a.revenue)
            .then_with(|| a.orderdate.cmp(&b.orderdate))
            .then_with(|| a.orderkey.cmp(&b.orderkey))
    });
    rows.truncate(10);
    rows
}

/// One Q4 output row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q4Row {
    /// `o_orderpriority`.
    pub priority: String,
    /// Orders in the quarter with at least one late lineitem.
    pub count: u64,
}

/// Finalizes the Q4 per-priority counts into spec order.
pub fn q4_finalize(counts: [u64; 5]) -> Vec<Q4Row> {
    crate::text::PRIORITIES
        .iter()
        .enumerate()
        .filter(|(i, _)| counts[*i] > 0)
        .map(|(i, p)| Q4Row {
            priority: p.to_string(),
            count: counts[i],
        })
        .collect()
}

/// One Q5 output row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q5Row {
    /// `n_name`.
    pub nation: String,
    /// `sum(l_extendedprice * (1 - l_discount))` for the nation.
    pub revenue: Decimal,
}

/// Sorts Q5 rows by revenue descending.
pub fn q5_finalize(groups: std::collections::HashMap<String, Decimal>) -> Vec<Q5Row> {
    let mut rows: Vec<Q5Row> = groups
        .into_iter()
        .map(|(nation, revenue)| Q5Row { nation, revenue })
        .collect();
    rows.sort_by(|a, b| {
        b.revenue
            .cmp(&a.revenue)
            .then_with(|| a.nation.cmp(&b.nation))
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q1_slot_layout() {
        assert_eq!(q1_slot(b'A', b'F'), 0);
        assert_eq!(q1_slot(b'A', b'O'), 1);
        assert_eq!(q1_slot(b'N', b'F'), 2);
        assert_eq!(q1_slot(b'R', b'O'), 5);
    }

    #[test]
    fn q1_acc_folds_expected_arithmetic() {
        let mut acc = Q1Acc::default();
        acc.fold(
            Decimal::from_int(10),
            Decimal::from_int(100),
            Decimal::parse("0.10").unwrap(),
            Decimal::parse("0.05").unwrap(),
        );
        assert_eq!(acc.sum_qty, Decimal::from_int(10));
        assert_eq!(acc.sum_disc_price, Decimal::from_int(90));
        assert_eq!(acc.sum_charge, Decimal::parse("94.5").unwrap());
        assert_eq!(acc.count, 1);
    }

    #[test]
    fn plus_months_rolls_over_years() {
        assert_eq!(plus_months(date(1993, 7, 1), 3), date(1993, 10, 1));
        assert_eq!(plus_months(date(1993, 11, 1), 3), date(1994, 2, 1));
        assert_eq!(plus_months(date(1994, 1, 1), 12), date(1995, 1, 1));
    }

    #[test]
    fn finalizers_sort_correctly() {
        let rows = q2_finalize(vec![
            Q2Row {
                acctbal: Decimal::from_int(1),
                supplier: "s1".into(),
                nation: "A".into(),
                partkey: 1,
            },
            Q2Row {
                acctbal: Decimal::from_int(5),
                supplier: "s2".into(),
                nation: "B".into(),
                partkey: 2,
            },
        ]);
        assert_eq!(rows[0].partkey, 2, "highest acctbal first");
        let mut groups = std::collections::HashMap::new();
        groups.insert("X".to_string(), Decimal::from_int(3));
        groups.insert("Y".to_string(), Decimal::from_int(9));
        let q5 = q5_finalize(groups);
        assert_eq!(q5[0].nation, "Y");
    }
}
