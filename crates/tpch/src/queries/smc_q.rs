//! Q1–Q6 over the SMC database — the compiled-query implementations.
//!
//! Four variants per the evaluation:
//!
//! * `qN` — compiled safe code: block enumeration plus checked reference
//!   joins ("SMC (C#)" in Fig 11).
//! * `qN_unsafe` — compiled unsafe code: raw field pointers and in-place
//!   decimal arithmetic ("SMC (unsafe C#)"); distinct only where decimal
//!   math dominates (Q1), as the paper observes.
//! * `qN_direct` — §6 direct-pointer joins ("SMC (direct)", Fig 12);
//!   distinct only for queries with reference joins (Q3–Q5).
//! * `qN_columnar` — §4.1 columnar storage ("SMC (columnar)", Fig 12) over
//!   the shredded lineitem twin.
//!
//! Plus `q1_linq`/`q6_linq`: the interpreted LINQ-to-objects engine, for
//! the §7 "40–400 % slower" comparison.

use std::collections::{HashMap, HashSet};

use smc_memory::{Decimal, SlotState};
use smc_query::LinqExt;

use super::*;
use crate::smcdb::{licol, SmcDb};

// ---------------------------------------------------------------------
// Q1 — pricing summary report
// ---------------------------------------------------------------------

/// Q1, compiled safe.
pub fn q1(db: &SmcDb, p: &Params) -> Vec<Q1Row> {
    let _span = super::qspan("smc.q1");
    let cutoff = q1_cutoff(p);
    let guard = db.runtime.pin();
    let mut table = [Q1Acc::default(); 6];
    db.lineitems.for_each(&guard, |l| {
        if l.shipdate <= cutoff {
            table[q1_slot(l.returnflag, l.linestatus)].fold(
                l.quantity,
                l.extendedprice,
                l.discount,
                l.tax,
            );
        }
    });
    q1_rows_from_table(&table)
}

/// Q1, compiled unsafe: reads fields through raw pointers and accumulates
/// decimals in place — the paper's biggest unsafe-C# win (§7: "calling the
/// functions that perform decimal math using pointers and allowing for
/// in-place modifications results in a huge performance gain").
pub fn q1_unsafe(db: &SmcDb, p: &Params) -> Vec<Q1Row> {
    let _span = super::qspan("smc.q1_unsafe");
    let cutoff = q1_cutoff(p);
    let _guard = db.runtime.pin();
    let mut table = [Q1Acc::default(); 6];
    let m = db.lineitems.context().membership_snapshot();
    for block in &m.blocks {
        let cap = block.header().capacity;
        for slot in 0..cap {
            if block.slot_word(slot).state() != SlotState::Valid {
                continue;
            }
            // SAFETY: valid slot under an epoch guard; raw field pointers
            // into the block, as the generated unsafe code would emit.
            unsafe {
                let l = block.obj_ptr(slot).cast::<crate::smcdb::Lineitem>();
                if (*l).shipdate > cutoff {
                    continue;
                }
                let acc = &mut table[q1_slot((*l).returnflag, (*l).linestatus)];
                let price = std::ptr::addr_of!((*l).extendedprice).read();
                let discount = std::ptr::addr_of!((*l).discount).read();
                let disc_price = price * (Decimal::ONE - discount);
                Decimal::add_in_place(&mut acc.sum_qty, std::ptr::addr_of!((*l).quantity).read());
                Decimal::add_in_place(&mut acc.sum_base, price);
                Decimal::add_in_place(&mut acc.sum_disc_price, disc_price);
                Decimal::add_in_place(
                    &mut acc.sum_charge,
                    disc_price * (Decimal::ONE + std::ptr::addr_of!((*l).tax).read()),
                );
                Decimal::add_in_place(&mut acc.sum_discount, discount);
                acc.count += 1;
            }
        }
    }
    q1_rows_from_table(&table)
}

/// Q1 over columnar storage: touches only the seven columns it needs.
pub fn q1_columnar(db: &SmcDb, p: &Params) -> Vec<Q1Row> {
    let _span = super::qspan("smc.q1_columnar");
    let col = db.lineitems_col.as_ref().expect("columnar twin not loaded");
    let cutoff = q1_cutoff(p);
    let guard = db.runtime.pin();
    let mut table = [Q1Acc::default(); 6];
    col.for_each_block(&guard, |cols, block| {
        let cap = block.header().capacity as usize;
        // SAFETY: column indices/types match LineitemCol's declaration.
        unsafe {
            let shipdates = cols.column_slice::<i32>(licol::SHIPDATE, cap);
            let flags = cols.column_slice::<u8>(licol::RETURNFLAG, cap);
            let statuses = cols.column_slice::<u8>(licol::LINESTATUS, cap);
            let qtys = cols.column_slice::<Decimal>(licol::QUANTITY, cap);
            let prices = cols.column_slice::<Decimal>(licol::EXTENDEDPRICE, cap);
            let discounts = cols.column_slice::<Decimal>(licol::DISCOUNT, cap);
            let taxes = cols.column_slice::<Decimal>(licol::TAX, cap);
            for slot in 0..cap {
                if block.slot_word(slot as u32).state() != SlotState::Valid {
                    continue;
                }
                if shipdates[slot] > cutoff {
                    continue;
                }
                table[q1_slot(flags[slot], statuses[slot])].fold(
                    qtys[slot],
                    prices[slot],
                    discounts[slot],
                    taxes[slot],
                );
            }
        }
    });
    q1_rows_from_table(&table)
}

/// Q1 through the interpreted LINQ engine (boxed operators, per-element
/// virtual dispatch, materialized groups).
pub fn q1_linq(db: &SmcDb, p: &Params) -> Vec<Q1Row> {
    let _span = super::qspan("smc.q1_linq");
    let cutoff = q1_cutoff(p);
    let guard = db.runtime.pin();
    let groups = db
        .lineitems
        .iter(&guard)
        .map(|(_, l)| *l)
        .linq()
        .where_(move |l| l.shipdate <= cutoff)
        .group_by(|l| (l.returnflag, l.linestatus));
    let mut table = [Q1Acc::default(); 6];
    for ((flag, status), items) in groups {
        let acc = &mut table[q1_slot(flag, status)];
        for l in items {
            acc.fold(l.quantity, l.extendedprice, l.discount, l.tax);
        }
    }
    q1_rows_from_table(&table)
}

// ---------------------------------------------------------------------
// Q2 — minimum cost supplier
// ---------------------------------------------------------------------

/// Q2, compiled safe (reference joins part → supplier → nation → region).
pub fn q2(db: &SmcDb, p: &Params) -> Vec<Q2Row> {
    let _span = super::qspan("smc.q2");
    let guard = db.runtime.pin();
    // Pass 1: minimum supply cost per qualifying part in the region.
    let mut min_cost: HashMap<i64, Decimal> = HashMap::new();
    db.partsupps.for_each(&guard, |ps| {
        let Some(part) = ps.part.get(&guard) else {
            return;
        };
        if part.size != p.q2_size || !part.typ.as_str().ends_with(p.q2_type.as_str()) {
            return;
        }
        let Some(supplier) = ps.supplier.get(&guard) else {
            return;
        };
        let Some(nation) = supplier.nation.get(&guard) else {
            return;
        };
        let Some(region) = nation.region.get(&guard) else {
            return;
        };
        if region.name.as_str() != p.q2_region {
            return;
        }
        min_cost
            .entry(ps.partkey)
            .and_modify(|c| *c = (*c).min(ps.supplycost))
            .or_insert(ps.supplycost);
    });
    // Pass 2: suppliers achieving the minimum.
    let mut rows = Vec::new();
    db.partsupps.for_each(&guard, |ps| {
        let Some(&min) = min_cost.get(&ps.partkey) else {
            return;
        };
        if ps.supplycost != min {
            return;
        }
        let Some(supplier) = ps.supplier.get(&guard) else {
            return;
        };
        let Some(nation) = supplier.nation.get(&guard) else {
            return;
        };
        let Some(region) = nation.region.get(&guard) else {
            return;
        };
        if region.name.as_str() != p.q2_region {
            return;
        }
        rows.push(Q2Row {
            acctbal: supplier.acctbal,
            supplier: supplier.name.as_str().to_string(),
            nation: nation.name.as_str().to_string(),
            partkey: ps.partkey,
        });
    });
    q2_finalize(rows)
}

// ---------------------------------------------------------------------
// Q3 — shipping priority
// ---------------------------------------------------------------------

/// Q3, compiled safe: lineitem scan with reference joins to order and
/// customer.
pub fn q3(db: &SmcDb, p: &Params) -> Vec<Q3Row> {
    let _span = super::qspan("smc.q3");
    let guard = db.runtime.pin();
    let seg = crate::text::SEGMENTS
        .iter()
        .position(|s| *s == p.q3_segment)
        .unwrap() as u8;
    let mut groups: HashMap<i64, Q3Row> = HashMap::new();
    db.lineitems.for_each(&guard, |l| {
        if l.shipdate <= p.q3_date {
            return;
        }
        let Some(o) = l.order.get(&guard) else { return };
        if o.orderdate >= p.q3_date {
            return;
        }
        let Some(c) = o.customer.get(&guard) else {
            return;
        };
        if c.mktsegment != seg {
            return;
        }
        let revenue = l.extendedprice * (Decimal::ONE - l.discount);
        groups
            .entry(l.orderkey)
            .and_modify(|r| r.revenue += revenue)
            .or_insert(Q3Row {
                orderkey: l.orderkey,
                revenue,
                orderdate: o.orderdate,
                shippriority: o.shippriority,
            });
    });
    q3_finalize(groups)
}

/// Q3 with §6 direct-pointer joins.
pub fn q3_direct(db: &SmcDb, p: &Params) -> Vec<Q3Row> {
    let _span = super::qspan("smc.q3_direct");
    let guard = db.runtime.pin();
    let seg = crate::text::SEGMENTS
        .iter()
        .position(|s| *s == p.q3_segment)
        .unwrap() as u8;
    let mut groups: HashMap<i64, Q3Row> = HashMap::new();
    db.lineitems.for_each(&guard, |l| {
        if l.shipdate <= p.q3_date {
            return;
        }
        let Some(o) = l.order_d.and_then(|d| d.get(&guard)) else {
            return;
        };
        if o.orderdate >= p.q3_date {
            return;
        }
        let Some(c) = o.customer_d.and_then(|d| d.get(&guard)) else {
            return;
        };
        if c.mktsegment != seg {
            return;
        }
        let revenue = l.extendedprice * (Decimal::ONE - l.discount);
        groups
            .entry(l.orderkey)
            .and_modify(|r| r.revenue += revenue)
            .or_insert(Q3Row {
                orderkey: l.orderkey,
                revenue,
                orderdate: o.orderdate,
                shippriority: o.shippriority,
            });
    });
    q3_finalize(groups)
}

/// Q3 over columnar lineitems (refs gathered from the reference column).
pub fn q3_columnar(db: &SmcDb, p: &Params) -> Vec<Q3Row> {
    let _span = super::qspan("smc.q3_columnar");
    let col = db.lineitems_col.as_ref().expect("columnar twin not loaded");
    let guard = db.runtime.pin();
    let seg = crate::text::SEGMENTS
        .iter()
        .position(|s| *s == p.q3_segment)
        .unwrap() as u8;
    let mut groups: HashMap<i64, Q3Row> = HashMap::new();
    col.for_each_block(&guard, |cols, block| {
        let cap = block.header().capacity as usize;
        // SAFETY: column indices/types match LineitemCol.
        unsafe {
            let shipdates = cols.column_slice::<i32>(licol::SHIPDATE, cap);
            let orderkeys = cols.column_slice::<i64>(licol::ORDERKEY, cap);
            let prices = cols.column_slice::<Decimal>(licol::EXTENDEDPRICE, cap);
            let discounts = cols.column_slice::<Decimal>(licol::DISCOUNT, cap);
            let orders = cols.column_slice::<smc::Ref<crate::smcdb::Order>>(licol::ORDER, cap);
            for slot in 0..cap {
                if block.slot_word(slot as u32).state() != SlotState::Valid {
                    continue;
                }
                if shipdates[slot] <= p.q3_date {
                    continue;
                }
                let Some(o) = orders[slot].get(&guard) else {
                    continue;
                };
                if o.orderdate >= p.q3_date {
                    continue;
                }
                let Some(c) = o.customer.get(&guard) else {
                    continue;
                };
                if c.mktsegment != seg {
                    continue;
                }
                let revenue = prices[slot] * (Decimal::ONE - discounts[slot]);
                groups
                    .entry(orderkeys[slot])
                    .and_modify(|r| r.revenue += revenue)
                    .or_insert(Q3Row {
                        orderkey: orderkeys[slot],
                        revenue,
                        orderdate: o.orderdate,
                        shippriority: o.shippriority,
                    });
            }
        }
    });
    q3_finalize(groups)
}

// ---------------------------------------------------------------------
// Q4 — order priority checking
// ---------------------------------------------------------------------

/// Q4, compiled safe: lineitem semi-join (exists commitdate < receiptdate)
/// against the quarter's orders.
pub fn q4(db: &SmcDb, p: &Params) -> Vec<Q4Row> {
    let _span = super::qspan("smc.q4");
    let guard = db.runtime.pin();
    let end = plus_months(p.q4_date, 3);
    // Distinct orders with at least one late lineitem, restricted to the
    // quarter through the order reference.
    let mut late: HashSet<i64> = HashSet::new();
    let mut priorities: HashMap<i64, u8> = HashMap::new();
    db.lineitems.for_each(&guard, |l| {
        if l.commitdate >= l.receiptdate {
            return;
        }
        if late.contains(&l.orderkey) {
            return;
        }
        let Some(o) = l.order.get(&guard) else { return };
        if o.orderdate < p.q4_date || o.orderdate >= end {
            return;
        }
        late.insert(l.orderkey);
        priorities.insert(l.orderkey, o.orderpriority);
    });
    let mut counts = [0u64; 5];
    for (_, pri) in priorities {
        counts[pri as usize] += 1;
    }
    q4_finalize(counts)
}

/// Q4 with direct-pointer joins.
pub fn q4_direct(db: &SmcDb, p: &Params) -> Vec<Q4Row> {
    let _span = super::qspan("smc.q4_direct");
    let guard = db.runtime.pin();
    let end = plus_months(p.q4_date, 3);
    let mut late: HashSet<i64> = HashSet::new();
    let mut counts = [0u64; 5];
    db.lineitems.for_each(&guard, |l| {
        if l.commitdate >= l.receiptdate || late.contains(&l.orderkey) {
            return;
        }
        let Some(o) = l.order_d.and_then(|d| d.get(&guard)) else {
            return;
        };
        if o.orderdate < p.q4_date || o.orderdate >= end {
            return;
        }
        late.insert(l.orderkey);
        counts[o.orderpriority as usize] += 1;
    });
    q4_finalize(counts)
}

// ---------------------------------------------------------------------
// Q5 — local supplier volume
// ---------------------------------------------------------------------

/// Q5, compiled safe: reference joins lineitem → supplier → nation →
/// region and lineitem → order → customer, with the spec's
/// customer-nation = supplier-nation condition.
pub fn q5(db: &SmcDb, p: &Params) -> Vec<Q5Row> {
    let _span = super::qspan("smc.q5");
    let guard = db.runtime.pin();
    let end = plus_months(p.q5_date, 12);
    let mut groups: HashMap<String, Decimal> = HashMap::new();
    db.lineitems.for_each(&guard, |l| {
        let Some(o) = l.order.get(&guard) else { return };
        if o.orderdate < p.q5_date || o.orderdate >= end {
            return;
        }
        let Some(s) = l.supplier.get(&guard) else {
            return;
        };
        let Some(n) = s.nation.get(&guard) else {
            return;
        };
        let Some(r) = n.region.get(&guard) else {
            return;
        };
        if r.name.as_str() != p.q5_region {
            return;
        }
        let Some(c) = o.customer.get(&guard) else {
            return;
        };
        if c.nationkey != s.nationkey {
            return;
        }
        let revenue = l.extendedprice * (Decimal::ONE - l.discount);
        *groups.entry(n.name.as_str().to_string()).or_default() += revenue;
    });
    q5_finalize(groups)
}

/// Q5 with direct-pointer joins where available.
pub fn q5_direct(db: &SmcDb, p: &Params) -> Vec<Q5Row> {
    let _span = super::qspan("smc.q5_direct");
    let guard = db.runtime.pin();
    let end = plus_months(p.q5_date, 12);
    let mut groups: HashMap<String, Decimal> = HashMap::new();
    db.lineitems.for_each(&guard, |l| {
        let Some(o) = l.order_d.and_then(|d| d.get(&guard)) else {
            return;
        };
        if o.orderdate < p.q5_date || o.orderdate >= end {
            return;
        }
        let Some(s) = l.supplier_d.and_then(|d| d.get(&guard)) else {
            return;
        };
        let Some(n) = s.nation.get(&guard) else {
            return;
        };
        let Some(r) = n.region.get(&guard) else {
            return;
        };
        if r.name.as_str() != p.q5_region {
            return;
        }
        let Some(c) = o.customer_d.and_then(|d| d.get(&guard)) else {
            return;
        };
        if c.nationkey != s.nationkey {
            return;
        }
        let revenue = l.extendedprice * (Decimal::ONE - l.discount);
        *groups.entry(n.name.as_str().to_string()).or_default() += revenue;
    });
    q5_finalize(groups)
}

/// Q5 over columnar lineitems.
pub fn q5_columnar(db: &SmcDb, p: &Params) -> Vec<Q5Row> {
    let _span = super::qspan("smc.q5_columnar");
    let col = db.lineitems_col.as_ref().expect("columnar twin not loaded");
    let guard = db.runtime.pin();
    let end = plus_months(p.q5_date, 12);
    let mut groups: HashMap<String, Decimal> = HashMap::new();
    col.for_each_block(&guard, |cols, block| {
        let cap = block.header().capacity as usize;
        // SAFETY: column indices/types match LineitemCol.
        unsafe {
            let orders = cols.column_slice::<smc::Ref<crate::smcdb::Order>>(licol::ORDER, cap);
            let suppliers =
                cols.column_slice::<smc::Ref<crate::smcdb::Supplier>>(licol::SUPPLIER, cap);
            let prices = cols.column_slice::<Decimal>(licol::EXTENDEDPRICE, cap);
            let discounts = cols.column_slice::<Decimal>(licol::DISCOUNT, cap);
            for slot in 0..cap {
                if block.slot_word(slot as u32).state() != SlotState::Valid {
                    continue;
                }
                let Some(o) = orders[slot].get(&guard) else {
                    continue;
                };
                if o.orderdate < p.q5_date || o.orderdate >= end {
                    continue;
                }
                let Some(s) = suppliers[slot].get(&guard) else {
                    continue;
                };
                let Some(n) = s.nation.get(&guard) else {
                    continue;
                };
                let Some(r) = n.region.get(&guard) else {
                    continue;
                };
                if r.name.as_str() != p.q5_region {
                    continue;
                }
                let Some(c) = o.customer.get(&guard) else {
                    continue;
                };
                if c.nationkey != s.nationkey {
                    continue;
                }
                let revenue = prices[slot] * (Decimal::ONE - discounts[slot]);
                *groups.entry(n.name.as_str().to_string()).or_default() += revenue;
            }
        }
    });
    q5_finalize(groups)
}

// ---------------------------------------------------------------------
// Q6 — forecasting revenue change
// ---------------------------------------------------------------------

/// Q6, compiled safe: pure lineitem scan-aggregate.
pub fn q6(db: &SmcDb, p: &Params) -> Decimal {
    let _span = super::qspan("smc.q6");
    let guard = db.runtime.pin();
    let end = plus_months(p.q6_date, 12);
    let lo = p.q6_discount - Decimal::parse("0.01").unwrap();
    let hi = p.q6_discount + Decimal::parse("0.01").unwrap();
    let mut revenue = Decimal::ZERO;
    db.lineitems.for_each(&guard, |l| {
        if l.shipdate >= p.q6_date
            && l.shipdate < end
            && l.discount >= lo
            && l.discount <= hi
            && l.quantity < p.q6_quantity
        {
            revenue += l.extendedprice * l.discount;
        }
    });
    revenue
}

/// Q6 over columnar storage: four column arrays, no object access.
pub fn q6_columnar(db: &SmcDb, p: &Params) -> Decimal {
    let _span = super::qspan("smc.q6_columnar");
    let col = db.lineitems_col.as_ref().expect("columnar twin not loaded");
    let guard = db.runtime.pin();
    let end = plus_months(p.q6_date, 12);
    let lo = p.q6_discount - Decimal::parse("0.01").unwrap();
    let hi = p.q6_discount + Decimal::parse("0.01").unwrap();
    let mut revenue = Decimal::ZERO;
    col.for_each_block(&guard, |cols, block| {
        let cap = block.header().capacity as usize;
        // SAFETY: column indices/types match LineitemCol.
        unsafe {
            let shipdates = cols.column_slice::<i32>(licol::SHIPDATE, cap);
            let discounts = cols.column_slice::<Decimal>(licol::DISCOUNT, cap);
            let qtys = cols.column_slice::<Decimal>(licol::QUANTITY, cap);
            let prices = cols.column_slice::<Decimal>(licol::EXTENDEDPRICE, cap);
            for slot in 0..cap {
                if block.slot_word(slot as u32).state() != SlotState::Valid {
                    continue;
                }
                if shipdates[slot] >= p.q6_date
                    && shipdates[slot] < end
                    && discounts[slot] >= lo
                    && discounts[slot] <= hi
                    && qtys[slot] < p.q6_quantity
                {
                    revenue += prices[slot] * discounts[slot];
                }
            }
        }
    });
    revenue
}

/// Q6 through the interpreted LINQ engine.
pub fn q6_linq(db: &SmcDb, p: &Params) -> Decimal {
    let _span = super::qspan("smc.q6_linq");
    let guard = db.runtime.pin();
    let end = plus_months(p.q6_date, 12);
    let lo = p.q6_discount - Decimal::parse("0.01").unwrap();
    let hi = p.q6_discount + Decimal::parse("0.01").unwrap();
    let q6_date = p.q6_date;
    let q6_quantity = p.q6_quantity;
    db.lineitems
        .iter(&guard)
        .map(|(_, l)| *l)
        .linq()
        .where_(move |l| {
            l.shipdate >= q6_date
                && l.shipdate < end
                && l.discount >= lo
                && l.discount <= hi
                && l.quantity < q6_quantity
        })
        .sum_by(|l| l.extendedprice * l.discount)
}

// ---------------------------------------------------------------------
// Parallel variants (morsel-driven, smc-exec)
// ---------------------------------------------------------------------

/// Q1 in parallel: each worker folds its morsels into a private 6-slot
/// table; tables are merged slot-wise in the reduce step. Exact decimal
/// arithmetic makes the result bit-identical to [`q1`] regardless of how
/// morsels were distributed.
pub fn q1_par(db: &SmcDb, p: &Params, pool: &smc_exec::WorkerPool) -> Vec<Q1Row> {
    let _span = super::qspan("smc.q1_par");
    let cutoff = q1_cutoff(p);
    let scan = smc_exec::ParScan::new(&db.lineitems, pool);
    let table = scan.filter_fold(
        || [Q1Acc::default(); 6],
        |l| l.shipdate <= cutoff,
        |t, l| {
            t[q1_slot(l.returnflag, l.linestatus)].fold(
                l.quantity,
                l.extendedprice,
                l.discount,
                l.tax,
            );
        },
        |into, from| q1_merge_tables(into, &from),
    );
    q1_rows_from_table(&table)
}

/// Q6 in parallel: per-worker revenue partials, summed in the reduce step.
pub fn q6_par(db: &SmcDb, p: &Params, pool: &smc_exec::WorkerPool) -> Decimal {
    let _span = super::qspan("smc.q6_par");
    let end = plus_months(p.q6_date, 12);
    let lo = p.q6_discount - Decimal::parse("0.01").unwrap();
    let hi = p.q6_discount + Decimal::parse("0.01").unwrap();
    let scan = smc_exec::ParScan::new(&db.lineitems, pool);
    scan.filter_fold(
        || Decimal::ZERO,
        |l| {
            l.shipdate >= p.q6_date
                && l.shipdate < end
                && l.discount >= lo
                && l.discount <= hi
                && l.quantity < p.q6_quantity
        },
        |revenue, l| *revenue += l.extendedprice * l.discount,
        |into, from| *into += from,
    )
}

/// Q6 over columnar storage in parallel: blocks are the row-group morsels.
pub fn q6_columnar_par(db: &SmcDb, p: &Params, pool: &smc_exec::WorkerPool) -> Decimal {
    let _span = super::qspan("smc.q6_columnar_par");
    let col = db.lineitems_col.as_ref().expect("columnar twin not loaded");
    let end = plus_months(p.q6_date, 12);
    let lo = p.q6_discount - Decimal::parse("0.01").unwrap();
    let hi = p.q6_discount + Decimal::parse("0.01").unwrap();
    let scan = smc_exec::ParColumnarScan::new(col, pool);
    scan.fold_blocks(
        || Decimal::ZERO,
        |revenue, cols, block| {
            let cap = block.header().capacity as usize;
            // SAFETY: column indices/types match LineitemCol.
            unsafe {
                let shipdates = cols.column_slice::<i32>(licol::SHIPDATE, cap);
                let discounts = cols.column_slice::<Decimal>(licol::DISCOUNT, cap);
                let qtys = cols.column_slice::<Decimal>(licol::QUANTITY, cap);
                let prices = cols.column_slice::<Decimal>(licol::EXTENDEDPRICE, cap);
                for slot in 0..cap {
                    if block.slot_word(slot as u32).state() != SlotState::Valid {
                        continue;
                    }
                    if shipdates[slot] >= p.q6_date
                        && shipdates[slot] < end
                        && discounts[slot] >= lo
                        && discounts[slot] <= hi
                        && qtys[slot] < p.q6_quantity
                    {
                        *revenue += prices[slot] * discounts[slot];
                    }
                }
            }
        },
        |into, from| *into += from,
    )
}
