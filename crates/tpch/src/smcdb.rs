//! The object-oriented TPC-H schema over self-managed collections (§7).
//!
//! "TPC-H tables map to collections and each record to an object composed
//! of primitive types and references to other records (all primary-foreign-
//! key relations). Based on the latter, most joins are performed using
//! references." Every table is an [`Smc`]; every FK is a [`Ref`] (checked,
//! via the indirection table) plus an optional [`DirectRef`] (§6) used by
//! the `SMC (direct)` query variants of Figs 10–13.
//!
//! Strings are inline at the spec's column widths (tabular restriction,
//! §2); enumerated columns (`returnflag`, `mktsegment`, priorities, ...)
//! are stored as `u8` indexes into the spec's value pools — the same
//! dictionary trick any OO adaptation would use, decoded on output.

use std::sync::Arc;

use smc::{ColumnArrays, Columnar, ColumnarSmc, DirectRef, Ref, Smc};
use smc_memory::{Decimal, InlineStr, Runtime, Tabular};

use crate::gen::Generator;
use crate::text;

/// REGION object.
#[derive(Clone, Copy)]
pub struct Region {
    /// Primary key.
    pub key: i64,
    /// Name.
    pub name: InlineStr<16>,
    /// TPC-H comment text.
    pub comment: InlineStr<80>,
}
unsafe impl Tabular for Region {}

/// NATION object.
#[derive(Clone, Copy)]
pub struct Nation {
    /// Primary key.
    pub key: i64,
    /// Name.
    pub name: InlineStr<20>,
    /// FK: region key.
    pub regionkey: i64,
    /// The region (FK).
    pub region: Ref<Region>,
    /// TPC-H comment text.
    pub comment: InlineStr<100>,
}
unsafe impl Tabular for Nation {}

/// SUPPLIER object.
#[derive(Clone, Copy)]
pub struct Supplier {
    /// Primary key.
    pub key: i64,
    /// Name.
    pub name: InlineStr<20>,
    /// Address.
    pub address: InlineStr<20>,
    /// FK: nation key.
    pub nationkey: i64,
    /// The nation (FK).
    pub nation: Ref<Nation>,
    /// Phone number.
    pub phone: InlineStr<16>,
    /// Account balance.
    pub acctbal: Decimal,
    /// TPC-H comment text.
    pub comment: InlineStr<60>,
}
unsafe impl Tabular for Supplier {}

/// PART object.
#[derive(Clone, Copy)]
pub struct Part {
    /// Primary key.
    pub key: i64,
    /// Name.
    pub name: InlineStr<56>,
    /// Manufacturer.
    pub mfgr: InlineStr<16>,
    /// Brand.
    pub brand: InlineStr<10>,
    /// Part type string.
    pub typ: InlineStr<25>,
    /// Part size.
    pub size: i32,
    /// Container.
    pub container: InlineStr<10>,
    /// Retail price.
    pub retailprice: Decimal,
    /// TPC-H comment text.
    pub comment: InlineStr<20>,
}
unsafe impl Tabular for Part {}

/// PARTSUPP object.
#[derive(Clone, Copy)]
pub struct PartSupp {
    /// FK: part key.
    pub partkey: i64,
    /// FK: supplier key.
    pub suppkey: i64,
    /// The part (FK).
    pub part: Ref<Part>,
    /// The supplier (FK).
    pub supplier: Ref<Supplier>,
    /// Available quantity (`ps_availqty`).
    pub availqty: i32,
    /// Supply cost (`ps_supplycost`).
    pub supplycost: Decimal,
    /// TPC-H comment text.
    pub comment: InlineStr<40>,
}
unsafe impl Tabular for PartSupp {}

/// CUSTOMER object.
#[derive(Clone, Copy)]
pub struct Customer {
    /// Primary key.
    pub key: i64,
    /// Name.
    pub name: InlineStr<20>,
    /// Address.
    pub address: InlineStr<20>,
    /// FK: nation key.
    pub nationkey: i64,
    /// The nation (FK).
    pub nation: Ref<Nation>,
    /// Phone number.
    pub phone: InlineStr<16>,
    /// Account balance.
    pub acctbal: Decimal,
    /// Index into [`text::SEGMENTS`].
    pub mktsegment: u8,
    /// TPC-H comment text.
    pub comment: InlineStr<60>,
}
unsafe impl Tabular for Customer {}

/// ORDERS object.
#[derive(Clone, Copy)]
pub struct Order {
    /// Primary key.
    pub key: i64,
    /// FK: customer key.
    pub custkey: i64,
    /// The customer (FK).
    pub customer: Ref<Customer>,
    /// §6 direct pointer to the same customer (Fig 10 nested enumeration,
    /// Fig 12 direct variant).
    pub customer_d: Option<DirectRef<Customer>>,
    /// Order status flag.
    pub orderstatus: u8,
    /// Total order price.
    pub totalprice: Decimal,
    /// Order date (epoch day).
    pub orderdate: i32,
    /// Index into [`text::PRIORITIES`].
    pub orderpriority: u8,
    /// Clerk.
    pub clerk: InlineStr<16>,
    /// Ship priority.
    pub shippriority: i32,
    /// TPC-H comment text.
    pub comment: InlineStr<48>,
}
unsafe impl Tabular for Order {}

/// LINEITEM object.
#[derive(Clone, Copy)]
pub struct Lineitem {
    /// FK: order key.
    pub orderkey: i64,
    /// FK: part key.
    pub partkey: i64,
    /// FK: supplier key.
    pub suppkey: i64,
    /// The order (FK).
    pub order: Ref<Order>,
    /// The part (FK).
    pub part: Ref<Part>,
    /// The supplier (FK).
    pub supplier: Ref<Supplier>,
    /// Direct-pointer twins of the reference joins (§6).
    pub order_d: Option<DirectRef<Order>>,
    /// Direct pointer (§6) to the supplier, set when direct mode is on.
    pub supplier_d: Option<DirectRef<Supplier>>,
    /// Line number within the order.
    pub linenumber: i32,
    /// Quantity (`l_quantity`).
    pub quantity: Decimal,
    /// Extended price (`l_extendedprice`).
    pub extendedprice: Decimal,
    /// Discount fraction (`l_discount`).
    pub discount: Decimal,
    /// Tax fraction (`l_tax`).
    pub tax: Decimal,
    /// Return flag (`l_returnflag`).
    pub returnflag: u8,
    /// Line status (`l_linestatus`).
    pub linestatus: u8,
    /// Ship date (epoch day).
    pub shipdate: i32,
    /// Commit date (epoch day).
    pub commitdate: i32,
    /// Receipt date (epoch day).
    pub receiptdate: i32,
    /// Index into [`text::INSTRUCTIONS`].
    pub shipinstruct: u8,
    /// Index into [`text::MODES`].
    pub shipmode: u8,
    /// TPC-H comment text.
    pub comment: InlineStr<27>,
}
unsafe impl Tabular for Lineitem {}

/// Columnar projection of LINEITEM for the §4.1 variant (Fig 12): the
/// columns Q1–Q6 touch, shredded into per-column arrays.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LineitemCol {
    /// FK: order key.
    pub orderkey: i64,
    /// Quantity (`l_quantity`).
    pub quantity: Decimal,
    /// Extended price (`l_extendedprice`).
    pub extendedprice: Decimal,
    /// Discount fraction (`l_discount`).
    pub discount: Decimal,
    /// Tax fraction (`l_tax`).
    pub tax: Decimal,
    /// Return flag (`l_returnflag`).
    pub returnflag: u8,
    /// Line status (`l_linestatus`).
    pub linestatus: u8,
    /// Ship date (epoch day).
    pub shipdate: i32,
    /// Commit date (epoch day).
    pub commitdate: i32,
    /// Receipt date (epoch day).
    pub receiptdate: i32,
    /// The order (FK).
    pub order: Ref<Order>,
    /// The supplier (FK).
    pub supplier: Ref<Supplier>,
}
unsafe impl Tabular for LineitemCol {}

/// Column indices of [`LineitemCol`] (keep in sync with `COLUMN_WIDTHS`).
pub mod licol {
    /// Column index of `l_orderkey` in the columnar layout.
    pub const ORDERKEY: usize = 0;
    /// Column index of `l_quantity` in the columnar layout.
    pub const QUANTITY: usize = 1;
    /// Column index of `l_extendedprice` in the columnar layout.
    pub const EXTENDEDPRICE: usize = 2;
    /// Column index of `l_discount` in the columnar layout.
    pub const DISCOUNT: usize = 3;
    /// Column index of `l_tax` in the columnar layout.
    pub const TAX: usize = 4;
    /// Column index of `l_returnflag` in the columnar layout.
    pub const RETURNFLAG: usize = 5;
    /// Column index of `l_linestatus` in the columnar layout.
    pub const LINESTATUS: usize = 6;
    /// Column index of `l_shipdate` in the columnar layout.
    pub const SHIPDATE: usize = 7;
    /// Column index of `l_commitdate` in the columnar layout.
    pub const COMMITDATE: usize = 8;
    /// Column index of `l_receiptdate` in the columnar layout.
    pub const RECEIPTDATE: usize = 9;
    /// Column index of `l_order` in the columnar layout.
    pub const ORDER: usize = 10;
    /// Column index of `l_supplier` in the columnar layout.
    pub const SUPPLIER: usize = 11;
}

unsafe impl Columnar for LineitemCol {
    const COLUMN_WIDTHS: &'static [usize] = &[8, 16, 16, 16, 16, 1, 1, 4, 4, 4, 16, 16];

    unsafe fn scatter(&self, cols: &ColumnArrays, slot: usize) {
        cols.cell::<i64>(licol::ORDERKEY, slot).write(self.orderkey);
        cols.cell::<Decimal>(licol::QUANTITY, slot)
            .write(self.quantity);
        cols.cell::<Decimal>(licol::EXTENDEDPRICE, slot)
            .write(self.extendedprice);
        cols.cell::<Decimal>(licol::DISCOUNT, slot)
            .write(self.discount);
        cols.cell::<Decimal>(licol::TAX, slot).write(self.tax);
        cols.cell::<u8>(licol::RETURNFLAG, slot)
            .write(self.returnflag);
        cols.cell::<u8>(licol::LINESTATUS, slot)
            .write(self.linestatus);
        cols.cell::<i32>(licol::SHIPDATE, slot).write(self.shipdate);
        cols.cell::<i32>(licol::COMMITDATE, slot)
            .write(self.commitdate);
        cols.cell::<i32>(licol::RECEIPTDATE, slot)
            .write(self.receiptdate);
        cols.cell::<Ref<Order>>(licol::ORDER, slot)
            .write(self.order);
        cols.cell::<Ref<Supplier>>(licol::SUPPLIER, slot)
            .write(self.supplier);
    }

    unsafe fn gather(cols: &ColumnArrays, slot: usize) -> Self {
        LineitemCol {
            orderkey: cols.cell::<i64>(licol::ORDERKEY, slot).read(),
            quantity: cols.cell::<Decimal>(licol::QUANTITY, slot).read(),
            extendedprice: cols.cell::<Decimal>(licol::EXTENDEDPRICE, slot).read(),
            discount: cols.cell::<Decimal>(licol::DISCOUNT, slot).read(),
            tax: cols.cell::<Decimal>(licol::TAX, slot).read(),
            returnflag: cols.cell::<u8>(licol::RETURNFLAG, slot).read(),
            linestatus: cols.cell::<u8>(licol::LINESTATUS, slot).read(),
            shipdate: cols.cell::<i32>(licol::SHIPDATE, slot).read(),
            commitdate: cols.cell::<i32>(licol::COMMITDATE, slot).read(),
            receiptdate: cols.cell::<i32>(licol::RECEIPTDATE, slot).read(),
            order: cols.cell::<Ref<Order>>(licol::ORDER, slot).read(),
            supplier: cols.cell::<Ref<Supplier>>(licol::SUPPLIER, slot).read(),
        }
    }
}

/// The full TPC-H database over self-managed collections.
pub struct SmcDb {
    /// The runtime owning every collection's memory context.
    pub runtime: Arc<Runtime>,
    /// The `region` table.
    pub regions: Smc<Region>,
    /// The `nation` table.
    pub nations: Smc<Nation>,
    /// The `supplier` table.
    pub suppliers: Smc<Supplier>,
    /// The `part` table.
    pub parts: Smc<Part>,
    /// The `partsupp` table.
    pub partsupps: Smc<PartSupp>,
    /// The `customer` table.
    pub customers: Smc<Customer>,
    /// The `order` table.
    pub orders: Smc<Order>,
    /// The `lineitem` table.
    pub lineitems: Smc<Lineitem>,
    /// Columnar twin of the lineitem collection (loaded on demand).
    pub lineitems_col: Option<ColumnarSmc<LineitemCol>>,
}

impl SmcDb {
    /// Generates and loads the database at the generator's scale factor.
    /// `with_columnar` additionally loads the §4.1 columnar lineitem twin.
    pub fn load(gen: &Generator, with_columnar: bool) -> SmcDb {
        let runtime = Runtime::new();
        let regions: Smc<Region> = Smc::new(&runtime);
        let nations: Smc<Nation> = Smc::new(&runtime);
        let suppliers: Smc<Supplier> = Smc::new(&runtime);
        let parts: Smc<Part> = Smc::new(&runtime);
        let partsupps: Smc<PartSupp> = Smc::new(&runtime);
        let customers: Smc<Customer> = Smc::new(&runtime);
        let orders: Smc<Order> = Smc::new(&runtime);
        let lineitems: Smc<Lineitem> = Smc::new(&runtime);
        let lineitems_col: Option<ColumnarSmc<LineitemCol>> =
            with_columnar.then(|| ColumnarSmc::new(&runtime));

        // Key → reference maps, dense (keys are 0.. or 1..N).
        let mut region_refs = Vec::new();
        gen.regions(|r| {
            region_refs.push(regions.add(Region {
                key: r.key,
                name: r.name.as_str().into(),
                comment: r.comment.as_str().into(),
            }));
        });
        let mut nation_refs = Vec::new();
        gen.nations(|n| {
            nation_refs.push(nations.add(Nation {
                key: n.key,
                name: n.name.as_str().into(),
                regionkey: n.region,
                region: region_refs[n.region as usize],
                comment: n.comment.as_str().into(),
            }));
        });
        let mut supplier_refs = Vec::with_capacity(gen.cardinalities().suppliers + 1);
        supplier_refs.push(Ref::null()); // keys are 1-based
        gen.suppliers(|s| {
            supplier_refs.push(suppliers.add(Supplier {
                key: s.key,
                name: s.name.as_str().into(),
                address: s.address.as_str().into(),
                nationkey: s.nation,
                nation: nation_refs[s.nation as usize],
                phone: s.phone.as_str().into(),
                acctbal: s.acctbal,
                comment: s.comment.as_str().into(),
            }));
        });
        let mut part_refs = Vec::with_capacity(gen.cardinalities().parts + 1);
        part_refs.push(Ref::null());
        gen.parts(|p| {
            part_refs.push(parts.add(Part {
                key: p.key,
                name: p.name.as_str().into(),
                mfgr: p.mfgr.as_str().into(),
                brand: p.brand.as_str().into(),
                typ: p.typ.as_str().into(),
                size: p.size,
                container: p.container.as_str().into(),
                retailprice: p.retailprice,
                comment: p.comment.as_str().into(),
            }));
        });
        gen.partsupps(|ps| {
            partsupps.add(PartSupp {
                partkey: ps.part,
                suppkey: ps.supplier,
                part: part_refs[ps.part as usize],
                supplier: supplier_refs[ps.supplier as usize],
                availqty: ps.availqty,
                supplycost: ps.supplycost,
                comment: ps.comment.as_str().into(),
            });
        });
        let mut customer_refs = Vec::with_capacity(gen.cardinalities().customers + 1);
        customer_refs.push(Ref::null());
        gen.customers(|c| {
            customer_refs.push(
                customers.add(Customer {
                    key: c.key,
                    name: c.name.as_str().into(),
                    address: c.address.as_str().into(),
                    nationkey: c.nation,
                    nation: nation_refs[c.nation as usize],
                    phone: c.phone.as_str().into(),
                    acctbal: c.acctbal,
                    mktsegment: text::SEGMENTS
                        .iter()
                        .position(|s| *s == c.mktsegment)
                        .unwrap() as u8,
                    comment: c.comment.as_str().into(),
                }),
            );
        });
        {
            // Direct pointers are resolved inside one critical section.
            let guard = runtime.pin();
            gen.orders(|o, lines| {
                let customer = customer_refs[o.customer as usize];
                let order_ref = orders.add(Order {
                    key: o.key,
                    custkey: o.customer,
                    customer,
                    customer_d: customer.to_direct(&guard),
                    orderstatus: o.orderstatus as u8,
                    totalprice: o.totalprice,
                    orderdate: o.orderdate,
                    orderpriority: text::PRIORITIES
                        .iter()
                        .position(|p| *p == o.orderpriority)
                        .unwrap() as u8,
                    clerk: o.clerk.as_str().into(),
                    shippriority: o.shippriority,
                    comment: o.comment.as_str().into(),
                });
                for l in lines {
                    let supplier = supplier_refs[l.supplier as usize];
                    let li = Lineitem {
                        orderkey: l.order,
                        partkey: l.part,
                        suppkey: l.supplier,
                        order: order_ref,
                        part: part_refs[l.part as usize],
                        supplier,
                        order_d: order_ref.to_direct(&guard),
                        supplier_d: supplier.to_direct(&guard),
                        linenumber: l.linenumber,
                        quantity: l.quantity,
                        extendedprice: l.extendedprice,
                        discount: l.discount,
                        tax: l.tax,
                        returnflag: l.returnflag as u8,
                        linestatus: l.linestatus as u8,
                        shipdate: l.shipdate,
                        commitdate: l.commitdate,
                        receiptdate: l.receiptdate,
                        shipinstruct: text::INSTRUCTIONS
                            .iter()
                            .position(|s| *s == l.shipinstruct)
                            .unwrap() as u8,
                        shipmode: text::MODES.iter().position(|s| *s == l.shipmode).unwrap() as u8,
                        comment: l.comment.as_str().into(),
                    };
                    lineitems.add(li);
                    if let Some(col) = &lineitems_col {
                        col.add(LineitemCol {
                            orderkey: li.orderkey,
                            quantity: li.quantity,
                            extendedprice: li.extendedprice,
                            discount: li.discount,
                            tax: li.tax,
                            returnflag: li.returnflag,
                            linestatus: li.linestatus,
                            shipdate: li.shipdate,
                            commitdate: li.commitdate,
                            receiptdate: li.receiptdate,
                            order: li.order,
                            supplier: li.supplier,
                        });
                    }
                }
            });
        }
        SmcDb {
            runtime,
            regions,
            nations,
            suppliers,
            parts,
            partsupps,
            customers,
            orders,
            lineitems,
            lineitems_col,
        }
    }

    /// Total off-heap bytes across all collections.
    pub fn memory_bytes(&self) -> usize {
        self.regions.memory_bytes()
            + self.nations.memory_bytes()
            + self.suppliers.memory_bytes()
            + self.parts.memory_bytes()
            + self.partsupps.memory_bytes()
            + self.customers.memory_bytes()
            + self.orders.memory_bytes()
            + self.lineitems.memory_bytes()
            + self.lineitems_col.as_ref().map_or(0, |c| c.memory_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_small_db_and_count() {
        let gen = Generator::new(0.002);
        let db = SmcDb::load(&gen, true);
        let c = gen.cardinalities();
        assert_eq!(db.regions.len(), 5);
        assert_eq!(db.nations.len(), 25);
        assert_eq!(db.suppliers.len(), c.suppliers as u64);
        assert_eq!(db.parts.len(), c.parts as u64);
        assert_eq!(db.customers.len(), c.customers as u64);
        assert_eq!(db.orders.len(), c.orders as u64);
        assert!(
            db.lineitems.len() >= c.orders as u64,
            "1..=7 lines per order"
        );
        assert_eq!(db.lineitems.len(), db.lineitems_col.as_ref().unwrap().len());
        assert!(db.memory_bytes() > 0);
    }

    #[test]
    fn reference_joins_resolve() {
        let gen = Generator::new(0.001);
        let db = SmcDb::load(&gen, false);
        let g = db.runtime.pin();
        let mut checked = 0;
        db.lineitems.for_each(&g, |l| {
            let o = l.order.get(&g).expect("order reachable");
            assert_eq!(o.key, l.orderkey);
            let c = o.customer.get(&g).expect("customer reachable");
            assert_eq!(c.key, o.custkey);
            let n = c.nation.get(&g).expect("nation reachable");
            assert!(n.region.get(&g).is_some());
            checked += 1;
        });
        assert!(checked > 500);
    }

    #[test]
    fn direct_refs_agree_with_checked_refs() {
        let gen = Generator::new(0.001);
        let db = SmcDb::load(&gen, false);
        let g = db.runtime.pin();
        db.lineitems.for_each(&g, |l| {
            let via_ref = l.order.get(&g).unwrap().key;
            let via_direct = l.order_d.unwrap().get(&g).unwrap().key;
            assert_eq!(via_ref, via_direct);
            let s_ref = l.supplier.get(&g).unwrap().key;
            let s_dir = l.supplier_d.unwrap().get(&g).unwrap().key;
            assert_eq!(s_ref, s_dir);
        });
    }

    #[test]
    fn columnar_twin_matches_row_data() {
        let gen = Generator::new(0.001);
        let db = SmcDb::load(&gen, true);
        let col = db.lineitems_col.as_ref().unwrap();
        let g = db.runtime.pin();
        let mut row_sum = Decimal::ZERO;
        db.lineitems.for_each(&g, |l| row_sum += l.extendedprice);
        let mut col_sum = Decimal::ZERO;
        col.for_each(&g, |l| col_sum += l.extendedprice);
        assert_eq!(row_sum, col_sum);
    }
}
