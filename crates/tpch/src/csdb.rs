//! The TPC-H schema over the columnstore engine — the Fig 13 RDBMS
//! baseline. Tables are bulk-loaded into compressed column tables; per the
//! paper's setup, `lineitem` is clustered on `l_shipdate` and `orders` on
//! `o_orderdate` (§7: "use clustered indexes on shipdate and orderdate").

use columnstore::{ColTable, TableBuilder, Value};

use crate::gen::Generator;

/// The columnstore TPC-H database.
pub struct CsDb {
    /// `lineitem`, clustered on `l_shipdate`.
    pub lineitem: ColTable,
    /// `orders`, clustered on `o_orderdate`.
    pub orders: ColTable,
    /// `customer`.
    pub customer: ColTable,
    /// `supplier`.
    pub supplier: ColTable,
    /// `nation`.
    pub nation: ColTable,
    /// `region`.
    pub region: ColTable,
    /// `part`.
    pub part: ColTable,
    /// `partsupp`.
    pub partsupp: ColTable,
}

impl CsDb {
    /// Generates and bulk-loads all eight tables.
    pub fn load(gen: &Generator) -> CsDb {
        let mut region = TableBuilder::new(&["r_regionkey", "r_name"]);
        gen.regions(|r| {
            region.push_row(vec![Value::I64(r.key), Value::Str(r.name)]);
        });
        let mut nation = TableBuilder::new(&["n_nationkey", "n_name", "n_regionkey"]);
        gen.nations(|n| {
            nation.push_row(vec![
                Value::I64(n.key),
                Value::Str(n.name),
                Value::I64(n.region),
            ]);
        });
        let mut supplier = TableBuilder::new(&["s_suppkey", "s_name", "s_nationkey", "s_acctbal"]);
        gen.suppliers(|s| {
            supplier.push_row(vec![
                Value::I64(s.key),
                Value::Str(s.name),
                Value::I64(s.nation),
                Value::Decimal(s.acctbal),
            ]);
        });
        let mut part = TableBuilder::new(&["p_partkey", "p_name", "p_mfgr", "p_type", "p_size"]);
        gen.parts(|p| {
            part.push_row(vec![
                Value::I64(p.key),
                Value::Str(p.name),
                Value::Str(p.mfgr),
                Value::Str(p.typ),
                Value::I64(p.size as i64),
            ]);
        });
        let mut partsupp = TableBuilder::new(&["ps_partkey", "ps_suppkey", "ps_supplycost"]);
        gen.partsupps(|ps| {
            partsupp.push_row(vec![
                Value::I64(ps.part),
                Value::I64(ps.supplier),
                Value::Decimal(ps.supplycost),
            ]);
        });
        let mut customer = TableBuilder::new(&[
            "c_custkey",
            "c_name",
            "c_nationkey",
            "c_acctbal",
            "c_mktsegment",
        ]);
        gen.customers(|c| {
            customer.push_row(vec![
                Value::I64(c.key),
                Value::Str(c.name),
                Value::I64(c.nation),
                Value::Decimal(c.acctbal),
                Value::Str(c.mktsegment.to_string()),
            ]);
        });
        let mut orders = TableBuilder::new(&[
            "o_orderkey",
            "o_custkey",
            "o_totalprice",
            "o_orderdate",
            "o_orderpriority",
            "o_shippriority",
        ])
        .clustered_on("o_orderdate");
        let mut lineitem = TableBuilder::new(&[
            "l_orderkey",
            "l_partkey",
            "l_suppkey",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
            "l_returnflag",
            "l_linestatus",
            "l_shipdate",
            "l_commitdate",
            "l_receiptdate",
            "l_orderpriority",
        ])
        .clustered_on("l_shipdate");
        gen.orders(|o, lines| {
            orders.push_row(vec![
                Value::I64(o.key),
                Value::I64(o.customer),
                Value::Decimal(o.totalprice),
                Value::I64(o.orderdate as i64),
                Value::Str(o.orderpriority.to_string()),
                Value::I64(o.shippriority as i64),
            ]);
            for l in lines {
                lineitem.push_row(vec![
                    Value::I64(l.order),
                    Value::I64(l.part),
                    Value::I64(l.supplier),
                    Value::Decimal(l.quantity),
                    Value::Decimal(l.extendedprice),
                    Value::Decimal(l.discount),
                    Value::Decimal(l.tax),
                    Value::Str(l.returnflag.to_string()),
                    Value::Str(l.linestatus.to_string()),
                    Value::I64(l.shipdate as i64),
                    Value::I64(l.commitdate as i64),
                    Value::I64(l.receiptdate as i64),
                    // Denormalized copy of the order priority to support the
                    // engine's Q4 semi-join output without a second pass.
                    Value::Str(o.orderpriority.to_string()),
                ]);
            }
        });
        CsDb {
            lineitem: lineitem.build(),
            orders: orders.build(),
            customer: customer.build(),
            supplier: supplier.build(),
            nation: nation.build(),
            region: region.build(),
            part: part.build(),
            partsupp: partsupp.build(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dates::date;

    #[test]
    fn loads_clustered_tables() {
        let gen = Generator::new(0.002);
        let db = CsDb::load(&gen);
        assert_eq!(db.region.rows(), 5);
        assert_eq!(db.orders.rows(), gen.cardinalities().orders);
        assert!(db.lineitem.rows() >= db.orders.rows());
        assert_eq!(db.lineitem.clustered(), Some("l_shipdate"));
        assert_eq!(db.orders.clustered(), Some("o_orderdate"));
        // Clustered order means date predicates eliminate segments.
        if db.lineitem.rows() > columnstore::SEGMENT_ROWS {
            let ratio =
                db.lineitem
                    .elimination_ratio("l_shipdate", date(1998, 1, 1) as i64, i64::MAX);
            assert!(ratio > 0.0, "late dates should skip early segments");
        }
        assert!(db.lineitem.compressed_bytes() > 0);
    }
}
