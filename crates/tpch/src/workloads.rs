//! Non-query workloads of the evaluation: the refresh streams of Fig 8 and
//! the flat/nested enumerations of Fig 10.
//!
//! A refresh stream either (a) inserts new lineitems amounting to 0.1 % of
//! the initial population, or (b) enumerates the collection once and
//! removes the 0.1 % of objects whose order key falls in a provided hash
//! set — "All 0.1 % objects to delete are provided in a hash map and
//! removed in a single enumeration over the collection" (§7).

use std::collections::HashSet;

use smc_util::rng::Pcg32 as StdRng;

use smc_memory::Decimal;

use crate::dates::{LAST_ORDER_DATE, START_DATE};
use crate::gcdb::{lineitem_key, GcDb, GcLineitem};
use crate::smcdb::{Lineitem, SmcDb};

/// Synthesizes a fresh lineitem for insert streams (keys beyond the loaded
/// population so removals never collide with inserts).
pub fn synthetic_lineitem(rng: &mut StdRng, orderkey: i64) -> (i64, i32, Decimal, Decimal, i32) {
    let quantity = rng.gen_range(1..=50i64);
    let price = Decimal::from_cents(rng.gen_range(90_000i64..=200_000) * quantity);
    let shipdate = rng.gen_range(START_DATE..=LAST_ORDER_DATE);
    (
        orderkey,
        rng.gen_range(1..=7),
        Decimal::from_int(quantity),
        price,
        shipdate,
    )
}

/// One SMC insert stream: adds `count` synthetic lineitems.
pub fn smc_insert_stream(db: &SmcDb, rng: &mut StdRng, base_key: i64, count: usize) {
    for i in 0..count {
        let (orderkey, linenumber, quantity, price, shipdate) =
            synthetic_lineitem(rng, base_key + i as i64);
        db.lineitems.add(Lineitem {
            orderkey,
            partkey: 1,
            suppkey: 1,
            order: smc::Ref::null(),
            part: smc::Ref::null(),
            supplier: smc::Ref::null(),
            order_d: None,
            supplier_d: None,
            linenumber,
            quantity,
            extendedprice: price,
            discount: Decimal::ZERO,
            tax: Decimal::ZERO,
            returnflag: b'N',
            linestatus: b'O',
            shipdate,
            commitdate: shipdate + 10,
            receiptdate: shipdate + 20,
            shipinstruct: 0,
            shipmode: 0,
            comment: "refresh".into(),
        });
    }
}

/// One SMC removal stream: single enumeration removing lineitems whose
/// order key is in `victims` (§7's predicate-based removal).
pub fn smc_removal_stream(db: &SmcDb, victims: &HashSet<i64>) -> usize {
    let guard = db.runtime.pin();
    let mut to_remove = Vec::new();
    db.lineitems.for_each_ref(&guard, |r, l| {
        if victims.contains(&l.orderkey) {
            to_remove.push(r);
        }
    });
    drop(guard);
    let mut removed = 0;
    for r in to_remove {
        if db.lineitems.remove(r) {
            removed += 1;
        }
    }
    removed
}

/// Decimates the SMC lineitems: removes roughly `fraction` of all live
/// lineitems (chosen per-object, regardless of key) without re-insertion.
///
/// Unlike [`wear_smc`] — which keeps the population constant and merely
/// scatters slots — decimation drains block occupancy, which is what pushes
/// blocks under a context's `compaction_occupancy` cutoff and gives a
/// subsequent [`Smc::compact`](smc::Smc::compact) pass actual candidates.
pub fn smc_decimate(db: &SmcDb, rng: &mut StdRng, fraction: f64) -> usize {
    let cutoff = (fraction * 1024.0) as u32;
    let guard = db.runtime.pin();
    let mut to_remove = Vec::new();
    db.lineitems.for_each_ref(&guard, |r, _| {
        if rng.gen_range(0u32..1024) < cutoff {
            to_remove.push(r);
        }
    });
    drop(guard);
    let mut removed = 0;
    for r in to_remove {
        if db.lineitems.remove(r) {
            removed += 1;
        }
    }
    removed
}

/// One managed insert stream (into both the list and the dictionary view,
/// like the loader does).
pub fn gc_insert_stream(db: &GcDb, rng: &mut StdRng, base_key: i64, count: usize) {
    for i in 0..count {
        let (orderkey, linenumber, quantity, price, shipdate) =
            synthetic_lineitem(rng, base_key + i as i64);
        let h = db.lineitems.add(GcLineitem {
            orderkey,
            partkey: 1,
            suppkey: 1,
            order: managed_heap::Handle::new_invalid(),
            part: managed_heap::Handle::new_invalid(),
            supplier: managed_heap::Handle::new_invalid(),
            linenumber,
            quantity,
            extendedprice: price,
            discount: Decimal::ZERO,
            tax: Decimal::ZERO,
            returnflag: b'N',
            linestatus: b'O',
            shipdate,
            commitdate: shipdate + 10,
            receiptdate: shipdate + 20,
            comment: "refresh".to_string(),
        });
        db.lineitem_dict
            .insert_handle(lineitem_key(orderkey, linenumber), h);
    }
}

/// One managed removal stream over the list.
pub fn gc_list_removal_stream(db: &GcDb, victims: &HashSet<i64>) -> usize {
    let guard = db.heap.enter();
    db.lineitems
        .remove_where(&guard, |l| victims.contains(&l.orderkey))
}

/// One managed removal stream over the dictionary.
pub fn gc_dict_removal_stream(db: &GcDb, victims: &HashSet<i64>) -> usize {
    let guard = db.heap.enter();
    db.lineitem_dict
        .remove_where(&guard, |l| victims.contains(&l.orderkey))
}

/// Picks `count` victim order keys for a removal stream.
pub fn pick_victims(rng: &mut StdRng, max_orderkey: i64, count: usize) -> HashSet<i64> {
    let mut victims = HashSet::with_capacity(count);
    while victims.len() < count {
        victims.insert(rng.gen_range(1..=max_orderkey));
    }
    victims
}

// ---------------------------------------------------------------------
// Fig 10 enumerations
// ---------------------------------------------------------------------

/// Flat enumeration: touch every lineitem, fold a cheap function (§7's
/// "perform a simple function on each object").
pub fn smc_enumerate_flat(db: &SmcDb) -> (u64, i64) {
    let guard = db.runtime.pin();
    let mut acc = 0i64;
    let n = db.lineitems.for_each(&guard, |l| {
        acc = acc.wrapping_add(l.orderkey).wrapping_add(l.shipdate as i64);
    });
    (n, acc)
}

/// Nested enumeration: lineitem → order → customer (§7's "follow the order
/// reference to a customer object").
pub fn smc_enumerate_nested(db: &SmcDb) -> (u64, i64) {
    let guard = db.runtime.pin();
    let mut acc = 0i64;
    let mut n = 0u64;
    db.lineitems.for_each(&guard, |l| {
        if let Some(o) = l.order.get(&guard) {
            if let Some(c) = o.customer.get(&guard) {
                acc = acc.wrapping_add(c.key);
                n += 1;
            }
        }
    });
    (n, acc)
}

/// Nested enumeration using §6 direct pointers.
pub fn smc_enumerate_nested_direct(db: &SmcDb) -> (u64, i64) {
    let guard = db.runtime.pin();
    let mut acc = 0i64;
    let mut n = 0u64;
    db.lineitems.for_each(&guard, |l| {
        if let Some(o) = l.order_d.and_then(|d| d.get(&guard)) {
            if let Some(c) = o.customer_d.and_then(|d| d.get(&guard)) {
                acc = acc.wrapping_add(c.key);
                n += 1;
            }
        }
    });
    (n, acc)
}

/// Flat enumeration over the managed list.
pub fn gc_enumerate_flat(db: &GcDb) -> (u64, i64) {
    let guard = db.heap.enter();
    let mut acc = 0i64;
    let n = db.lineitems.for_each(&guard, |l| {
        acc = acc.wrapping_add(l.orderkey).wrapping_add(l.shipdate as i64);
    });
    (n, acc)
}

/// Nested enumeration over the managed list.
pub fn gc_enumerate_nested(db: &GcDb) -> (u64, i64) {
    let guard = db.heap.enter();
    let mut acc = 0i64;
    let mut n = 0u64;
    db.lineitems.for_each(&guard, |l| {
        if let Some(o) = db.order_arena.get(l.order) {
            if let Some(c) = db.customer_arena.get(o.customer) {
                acc = acc.wrapping_add(c.key);
                n += 1;
            }
        }
    });
    (n, acc)
}

/// "Wears" an SMC database: churns `fraction` of the lineitem population
/// through remove+insert cycles, scattering slot occupancy (Fig 10's worn
/// state).
pub fn wear_smc(db: &SmcDb, rng: &mut StdRng, cycles: usize, fraction: f64) {
    let initial = db.lineitems.len();
    let batch = ((initial as f64 * fraction) as usize).max(1);
    let max_orderkey = db.orders.len() as i64;
    for cycle in 0..cycles {
        let victims = pick_victims(rng, max_orderkey, (batch / 4).max(1));
        let removed = smc_removal_stream(db, &victims);
        // Insert exactly as many as were removed so wear scatters slots
        // without shrinking the population.
        smc_insert_stream(
            db,
            rng,
            1_000_000_000 + (cycle as i64) * batch as i64,
            removed,
        );
    }
}

/// "Wears" a managed database the same way.
pub fn wear_gc(db: &GcDb, rng: &mut StdRng, cycles: usize, fraction: f64) {
    let initial = db.lineitems.len();
    let batch = ((initial as f64 * fraction) as usize).max(1);
    let max_orderkey = db.orders.len() as i64;
    for cycle in 0..cycles {
        let victims = pick_victims(rng, max_orderkey, (batch / 4).max(1));
        let removed = gc_list_removal_stream(db, &victims);
        gc_insert_stream(
            db,
            rng,
            1_000_000_000 + (cycle as i64) * batch as i64,
            removed,
        );
    }
}

/// Deterministic RNG for workloads.
pub fn workload_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
