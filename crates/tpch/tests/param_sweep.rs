//! Parameterized cross-backend checks: the equality of answers must hold
//! for *any* parameter binding, not just the TPC-H validation values.

use smc_memory::Decimal;
use tpch::dates::date;
use tpch::queries::gc_q::EnumVia;
use tpch::queries::{cs_q, gc_q, smc_q, Params};
use tpch::Generator;

fn with_world(f: impl FnOnce(&tpch::smcdb::SmcDb, &tpch::gcdb::GcDb, &tpch::csdb::CsDb)) {
    let gen = Generator::new(0.002);
    let heap = managed_heap::ManagedHeap::new_batch();
    let smc = tpch::smcdb::SmcDb::load(&gen, true);
    let gc = tpch::gcdb::GcDb::load(&gen, &heap);
    let cs = tpch::csdb::CsDb::load(&gen);
    f(&smc, &gc, &cs);
}

#[test]
fn q6_agrees_across_years_and_discounts() {
    with_world(|smc, gc, cs| {
        for year in [1992, 1994, 1996, 1998] {
            for disc in ["0.02", "0.06", "0.09"] {
                let p = Params {
                    q6_date: date(year, 1, 1),
                    q6_discount: Decimal::parse(disc).unwrap(),
                    ..Params::default()
                };
                let reference = smc_q::q6(smc, &p);
                assert_eq!(gc_q::q6(gc, &p, EnumVia::List), reference, "{year}/{disc}");
                assert_eq!(cs_q::q6(cs, &p), reference, "{year}/{disc} columnstore");
                assert_eq!(
                    smc_q::q6_columnar(smc, &p),
                    reference,
                    "{year}/{disc} columnar"
                );
            }
        }
    });
}

#[test]
fn q3_agrees_across_segments_and_dates() {
    with_world(|smc, gc, cs| {
        for seg in ["AUTOMOBILE", "MACHINERY", "HOUSEHOLD"] {
            for (y, m, d) in [(1993, 6, 1), (1995, 3, 15), (1997, 12, 31)] {
                let p = Params {
                    q3_segment: seg.to_string(),
                    q3_date: date(y, m, d),
                    ..Params::default()
                };
                let reference = smc_q::q3(smc, &p);
                assert_eq!(
                    gc_q::q3(gc, &p, EnumVia::Dict),
                    reference,
                    "{seg} {y}-{m}-{d}"
                );
                assert_eq!(cs_q::q3(cs, &p), reference, "{seg} {y}-{m}-{d} cs");
                assert_eq!(
                    smc_q::q3_direct(smc, &p),
                    reference,
                    "{seg} {y}-{m}-{d} direct"
                );
            }
        }
    });
}

#[test]
fn q5_agrees_across_regions() {
    with_world(|smc, gc, cs| {
        for region in ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"] {
            let p = Params {
                q5_region: region.to_string(),
                ..Params::default()
            };
            let reference = smc_q::q5(smc, &p);
            assert_eq!(gc_q::q5(gc, &p, EnumVia::List), reference, "{region}");
            assert_eq!(cs_q::q5(cs, &p), reference, "{region} cs");
            assert_eq!(smc_q::q5_columnar(smc, &p), reference, "{region} columnar");
        }
    });
}

#[test]
fn q2_agrees_across_sizes_and_types() {
    with_world(|smc, gc, cs| {
        for size in [5, 15, 45] {
            for suffix in ["BRASS", "TIN", "STEEL"] {
                let p = Params {
                    q2_size: size,
                    q2_type: suffix.to_string(),
                    ..Params::default()
                };
                let reference = smc_q::q2(smc, &p);
                assert_eq!(gc_q::q2(gc, &p), reference, "{size}/{suffix}");
                assert_eq!(cs_q::q2(cs, &p), reference, "{size}/{suffix} cs");
            }
        }
    });
}

#[test]
fn q4_agrees_across_quarters() {
    with_world(|smc, gc, cs| {
        for (y, m) in [(1993, 1), (1993, 7), (1995, 10), (1997, 4)] {
            let p = Params {
                q4_date: date(y, m, 1),
                ..Params::default()
            };
            let reference = smc_q::q4(smc, &p);
            assert_eq!(gc_q::q4(gc, &p, EnumVia::List), reference, "{y}-{m}");
            assert_eq!(cs_q::q4(cs, &p), reference, "{y}-{m} cs");
            assert_eq!(smc_q::q4_direct(smc, &p), reference, "{y}-{m} direct");
        }
    });
}

#[test]
fn q1_cutoff_monotonicity() {
    // Growing DELTA shrinks the cutoff, so group counts must be
    // monotonically non-increasing — a self-consistency property.
    with_world(|smc, _, _| {
        let mut last_total = u64::MAX;
        for delta in [0, 30, 90, 365, 2000] {
            let p = Params {
                q1_delta: delta,
                ..Params::default()
            };
            let rows = smc_q::q1(smc, &p);
            let total: u64 = rows.iter().map(|r| r.count).sum();
            assert!(total <= last_total, "delta {delta}");
            last_total = total;
        }
    });
}
