//! Cross-backend validation: every query implementation — SMC compiled
//! (safe, unsafe, direct, columnar, LINQ), managed (List and Dictionary
//! enumeration), and the columnstore engine — must return exactly the same
//! rows for the same generated database. Decimal arithmetic is exact, so
//! the comparison is equality, not tolerance.

use tpch::csdb::CsDb;
use tpch::gcdb::GcDb;
use tpch::queries::gc_q::EnumVia;
use tpch::queries::{cs_q, gc_q, smc_q, Params};
use tpch::smcdb::SmcDb;
use tpch::Generator;

struct World {
    smc: SmcDb,
    gc: GcDb,
    cs: CsDb,
    params: Params,
}

fn world() -> World {
    let gen = Generator::new(0.004);
    let heap = managed_heap::ManagedHeap::new_batch();
    World {
        smc: SmcDb::load(&gen, true),
        gc: GcDb::load(&gen, &heap),
        cs: CsDb::load(&gen),
        params: Params::default(),
    }
}

#[test]
fn q1_identical_across_all_backends() {
    let w = world();
    let reference = smc_q::q1(&w.smc, &w.params);
    assert!(!reference.is_empty(), "Q1 must produce groups");
    assert_eq!(
        reference.len(),
        4,
        "the four real TPC-H Q1 groups: A-F, N-F, N-O, R-F"
    );
    assert_eq!(
        smc_q::q1_unsafe(&w.smc, &w.params),
        reference,
        "unsafe variant"
    );
    assert_eq!(
        smc_q::q1_columnar(&w.smc, &w.params),
        reference,
        "columnar variant"
    );
    assert_eq!(smc_q::q1_linq(&w.smc, &w.params), reference, "LINQ engine");
    assert_eq!(
        gc_q::q1(&w.gc, &w.params, EnumVia::List),
        reference,
        "managed list"
    );
    assert_eq!(
        gc_q::q1(&w.gc, &w.params, EnumVia::Dict),
        reference,
        "managed dict"
    );
    assert_eq!(cs_q::q1(&w.cs, &w.params), reference, "columnstore");
}

#[test]
fn q2_identical_across_backends() {
    let w = world();
    let reference = smc_q::q2(&w.smc, &w.params);
    assert_eq!(gc_q::q2(&w.gc, &w.params), reference, "managed");
    assert_eq!(cs_q::q2(&w.cs, &w.params), reference, "columnstore");
}

#[test]
fn q3_identical_across_all_backends() {
    let w = world();
    let reference = smc_q::q3(&w.smc, &w.params);
    assert!(!reference.is_empty(), "Q3 should find qualifying orders");
    assert!(reference.len() <= 10);
    assert_eq!(
        smc_q::q3_direct(&w.smc, &w.params),
        reference,
        "direct pointers"
    );
    assert_eq!(smc_q::q3_columnar(&w.smc, &w.params), reference, "columnar");
    assert_eq!(
        gc_q::q3(&w.gc, &w.params, EnumVia::List),
        reference,
        "managed list"
    );
    assert_eq!(
        gc_q::q3(&w.gc, &w.params, EnumVia::Dict),
        reference,
        "managed dict"
    );
    assert_eq!(cs_q::q3(&w.cs, &w.params), reference, "columnstore");
    // Revenue ordering holds.
    for pair in reference.windows(2) {
        assert!(pair[0].revenue >= pair[1].revenue);
    }
}

#[test]
fn q4_identical_across_all_backends() {
    let w = world();
    let reference = smc_q::q4(&w.smc, &w.params);
    assert_eq!(reference.len(), 5, "all five priorities appear");
    assert_eq!(
        smc_q::q4_direct(&w.smc, &w.params),
        reference,
        "direct pointers"
    );
    assert_eq!(
        gc_q::q4(&w.gc, &w.params, EnumVia::List),
        reference,
        "managed list"
    );
    assert_eq!(
        gc_q::q4(&w.gc, &w.params, EnumVia::Dict),
        reference,
        "managed dict"
    );
    assert_eq!(cs_q::q4(&w.cs, &w.params), reference, "columnstore");
}

#[test]
fn q5_identical_across_all_backends() {
    let w = world();
    let reference = smc_q::q5(&w.smc, &w.params);
    assert!(!reference.is_empty(), "ASIA nations should have revenue");
    assert_eq!(
        smc_q::q5_direct(&w.smc, &w.params),
        reference,
        "direct pointers"
    );
    assert_eq!(smc_q::q5_columnar(&w.smc, &w.params), reference, "columnar");
    assert_eq!(
        gc_q::q5(&w.gc, &w.params, EnumVia::List),
        reference,
        "managed list"
    );
    assert_eq!(
        gc_q::q5(&w.gc, &w.params, EnumVia::Dict),
        reference,
        "managed dict"
    );
    assert_eq!(cs_q::q5(&w.cs, &w.params), reference, "columnstore");
}

#[test]
fn q6_identical_across_all_backends() {
    let w = world();
    let reference = smc_q::q6(&w.smc, &w.params);
    assert!(reference > smc_memory::Decimal::ZERO);
    assert_eq!(smc_q::q6_columnar(&w.smc, &w.params), reference, "columnar");
    assert_eq!(smc_q::q6_linq(&w.smc, &w.params), reference, "LINQ engine");
    assert_eq!(
        gc_q::q6(&w.gc, &w.params, EnumVia::List),
        reference,
        "managed list"
    );
    assert_eq!(
        gc_q::q6(&w.gc, &w.params, EnumVia::Dict),
        reference,
        "managed dict"
    );
    assert_eq!(cs_q::q6(&w.cs, &w.params), reference, "columnstore");
}

#[test]
fn refresh_streams_keep_backends_consistent() {
    // Run identical refresh streams against SMC and managed databases and
    // verify the surviving populations match.
    let gen = Generator::new(0.002);
    let heap = managed_heap::ManagedHeap::new_batch();
    let smc = SmcDb::load(&gen, false);
    let gc = GcDb::load(&gen, &heap);
    let initial = smc.lineitems.len();
    assert_eq!(initial, gc.lineitems.len() as u64);

    let mut rng = tpch::workloads::workload_rng(42);
    let victims = tpch::workloads::pick_victims(&mut rng, gen.cardinalities().orders as i64, 50);
    let removed_smc = tpch::workloads::smc_removal_stream(&smc, &victims);
    let removed_gc = tpch::workloads::gc_list_removal_stream(&gc, &victims);
    assert_eq!(removed_smc, removed_gc, "same victims remove the same rows");
    // Dictionary view sees the same removals.
    let removed_dict = tpch::workloads::gc_dict_removal_stream(&gc, &victims);
    assert_eq!(removed_dict, removed_gc, "dict view removes the same rows");

    let mut rng2 = tpch::workloads::workload_rng(43);
    tpch::workloads::smc_insert_stream(&smc, &mut rng2, 2_000_000_000, 100);
    let mut rng3 = tpch::workloads::workload_rng(43);
    tpch::workloads::gc_insert_stream(&gc, &mut rng3, 2_000_000_000, 100);
    assert_eq!(smc.lineitems.len(), initial - removed_smc as u64 + 100);
    assert_eq!(gc.lineitems.len() as u64, initial - removed_gc as u64 + 100);
}

#[test]
fn enumerations_agree_between_backends() {
    let gen = Generator::new(0.002);
    let heap = managed_heap::ManagedHeap::new_batch();
    let smc = SmcDb::load(&gen, false);
    let gc = GcDb::load(&gen, &heap);
    let (n1, a1) = tpch::workloads::smc_enumerate_flat(&smc);
    let (n2, a2) = tpch::workloads::gc_enumerate_flat(&gc);
    assert_eq!((n1, a1), (n2, a2), "flat enumeration checksum");
    let (n3, a3) = tpch::workloads::smc_enumerate_nested(&smc);
    let (n4, a4) = tpch::workloads::gc_enumerate_nested(&gc);
    assert_eq!((n3, a3), (n4, a4), "nested enumeration checksum");
    let (n5, a5) = tpch::workloads::smc_enumerate_nested_direct(&smc);
    assert_eq!((n3, a3), (n5, a5), "direct-pointer enumeration checksum");
}

#[test]
fn worn_database_preserves_query_results_for_surviving_rows() {
    // After churn, Q1 totals change, but the SMC and managed databases worn
    // with the same deterministic streams stay equal.
    let gen = Generator::new(0.002);
    let heap = managed_heap::ManagedHeap::new_batch();
    let smc = SmcDb::load(&gen, false);
    let gc = GcDb::load(&gen, &heap);
    let mut rng_a = tpch::workloads::workload_rng(7);
    let mut rng_b = tpch::workloads::workload_rng(7);
    tpch::workloads::wear_smc(&smc, &mut rng_a, 3, 0.05);
    tpch::workloads::wear_gc(&gc, &mut rng_b, 3, 0.05);
    assert_eq!(smc.lineitems.len(), gc.lineitems.len() as u64);
    let p = Params::default();
    assert_eq!(smc_q::q6(&smc, &p), gc_q::q6(&gc, &p, EnumVia::List));
}
