//! Parallel ⨯ sequential parity: the morsel-driven Q1/Q6 plans must be
//! bit-identical to the single-threaded pipelines on every backend.
//! Decimal arithmetic is exact (integer mantissas), so the per-worker
//! partial aggregates merge to exactly the sequential answer regardless
//! of morsel assignment — the assertion is equality, not tolerance.

use smc_exec::WorkerPool;
use tpch::csdb::CsDb;
use tpch::gcdb::GcDb;
use tpch::queries::gc_q::EnumVia;
use tpch::queries::{cs_q, gc_q, smc_q, Params};
use tpch::smcdb::SmcDb;
use tpch::Generator;

const SF: f64 = 0.01;

#[test]
fn smc_parallel_queries_match_sequential() {
    let gen = Generator::new(SF);
    let db = SmcDb::load(&gen, true);
    let p = Params::default();
    let q1_seq = smc_q::q1(&db, &p);
    let q6_seq = smc_q::q6(&db, &p);
    assert!(!q1_seq.is_empty());
    for threads in [1, 2, 5] {
        let pool = WorkerPool::for_runtime(&db.runtime, threads).unwrap();
        assert_eq!(smc_q::q1_par(&db, &p, &pool), q1_seq, "{threads} threads");
        assert_eq!(smc_q::q6_par(&db, &p, &pool), q6_seq, "{threads} threads");
        assert_eq!(
            smc_q::q6_columnar_par(&db, &p, &pool),
            q6_seq,
            "columnar, {threads} threads"
        );
    }
}

#[test]
fn gc_parallel_queries_match_sequential() {
    let gen = Generator::new(SF);
    let heap = managed_heap::ManagedHeap::new_batch();
    let db = GcDb::load(&gen, &heap);
    let p = Params::default();
    let q1_seq = gc_q::q1(&db, &p, EnumVia::List);
    let q6_seq = gc_q::q6(&db, &p, EnumVia::List);
    for threads in [1, 4] {
        let pool = WorkerPool::new(threads);
        assert_eq!(gc_q::q1_par(&db, &p, &pool), q1_seq, "{threads} threads");
        assert_eq!(gc_q::q6_par(&db, &p, &pool), q6_seq, "{threads} threads");
    }
}

#[test]
fn cs_parallel_queries_match_sequential() {
    let gen = Generator::new(SF);
    let db = CsDb::load(&gen);
    let p = Params::default();
    let q1_seq = cs_q::q1(&db, &p);
    let q6_seq = cs_q::q6(&db, &p);
    for threads in [1, 4] {
        let pool = WorkerPool::new(threads);
        assert_eq!(cs_q::q1_par(&db, &p, &pool), q1_seq, "{threads} threads");
        assert_eq!(cs_q::q6_par(&db, &p, &pool), q6_seq, "{threads} threads");
    }
}

#[test]
fn parallel_answers_agree_across_backends() {
    let gen = Generator::new(SF);
    let heap = managed_heap::ManagedHeap::new_batch();
    let smc = SmcDb::load(&gen, false);
    let gc = GcDb::load(&gen, &heap);
    let cs = CsDb::load(&gen);
    let p = Params::default();
    let smc_pool = WorkerPool::for_runtime(&smc.runtime, 3).unwrap();
    let plain_pool = WorkerPool::new(3);
    let q1 = smc_q::q1_par(&smc, &p, &smc_pool);
    let q6 = smc_q::q6_par(&smc, &p, &smc_pool);
    assert_eq!(gc_q::q1_par(&gc, &p, &plain_pool), q1);
    assert_eq!(cs_q::q1_par(&cs, &p, &plain_pool), q1);
    assert_eq!(gc_q::q6_par(&gc, &p, &plain_pool), q6);
    assert_eq!(cs_q::q6_par(&cs, &p, &plain_pool), q6);
}
